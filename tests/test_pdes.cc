/**
 * @file
 * Parallel-in-model PDES tests: the SPSC channel, keyed event
 * ordering, the horizon protocol itself, and — the property the
 * whole subsystem is built around — bit-identical results for every
 * LP count and worker-thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "sim/pdes_scheduler.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/spsc.hh"
#include "sim/telemetry/json.hh"
#include "sim/telemetry/trace.hh"
#include "workloads/coherence_pdes.hh"
#include "workloads/packet_injector.hh"

namespace
{

using namespace macrosim;

// ---------------------------------------------------------------- SPSC

TEST(Spsc, FifoWithinRingCapacity)
{
    SpscChannel<int> ch(8);
    EXPECT_EQ(ch.capacity(), 8u);
    for (int i = 0; i < 8; ++i)
        ch.push(i);
    int v = -1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(ch.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ch.pop(v));
    EXPECT_EQ(ch.spills(), 0u);
}

TEST(Spsc, OverflowSpillsWithoutLoss)
{
    SpscChannel<int> ch(4);
    for (int i = 0; i < 100; ++i)
        ch.push(i);
    EXPECT_GT(ch.spills(), 0u);
    std::vector<int> got;
    int v = -1;
    while (ch.pop(v))
        got.push_back(v);
    // Order across the ring/spill boundary is not guaranteed (the
    // payloads carry their own ordering), but nothing may be lost or
    // duplicated.
    ASSERT_EQ(got.size(), 100u);
    std::sort(got.begin(), got.end());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(Spsc, TwoThreadedStream)
{
    SpscChannel<std::uint64_t> ch(64);
    constexpr std::uint64_t n = 20000;
    std::thread producer([&ch] {
        for (std::uint64_t i = 1; i <= n; ++i)
            ch.push(i);
    });
    std::uint64_t sum = 0, popped = 0, v = 0;
    while (popped < n) {
        if (ch.pop(v)) {
            sum += v;
            ++popped;
        }
    }
    producer.join();
    EXPECT_EQ(sum, n * (n + 1) / 2);
    EXPECT_FALSE(ch.pop(v));
}

// -------------------------------------------------------- keyed events

TEST(KeyedEvents, RunAfterPlainEventsOrderedByKey)
{
    Simulator sim;
    std::vector<int> order;
    sim.events().scheduleKeyed(10, 500, [&order] {
        order.push_back(500);
    });
    sim.events().scheduleKeyed(10, 2, [&order] { order.push_back(2); });
    // Plain events of the same tick run first even when scheduled
    // after the keyed ones.
    sim.events().schedule(10, [&order] { order.push_back(-1); });
    sim.events().schedule(5, [&order] { order.push_back(-5); });
    sim.run();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], -5);
    EXPECT_EQ(order[1], -1);
    EXPECT_EQ(order[2], 2);
    EXPECT_EQ(order[3], 500);
}

TEST(KeyedEvents, PeekNextTick)
{
    Simulator sim;
    EXPECT_EQ(sim.nextEventTick(), maxTick);
    sim.events().schedule(42, [] {});
    EXPECT_EQ(sim.nextEventTick(), 42u);
    const EventId id = sim.events().schedule(7, [] {});
    EXPECT_EQ(sim.nextEventTick(), 7u);
    sim.events().cancel(id);
    EXPECT_EQ(sim.nextEventTick(), 42u);
}

// ----------------------------------------------------- horizon protocol

struct PingPongNode
{
    PdesScheduler *sched = nullptr;
    std::uint32_t lp = 0;
    std::uint64_t rounds = 0;
    std::uint64_t received = 0;

    static void
    apply(void *target, const void *payload)
    {
        auto *node = static_cast<PingPongNode *>(target);
        std::uint64_t counter = 0;
        std::memcpy(&counter, payload, sizeof(counter));
        ++node->received;
        node->bounce(counter + 1);
    }

    void
    bounce(std::uint64_t counter)
    {
        if (counter >= rounds)
            return;
        const std::uint32_t other = lp ^ 1u;
        PdesEvent ev;
        ev.when = sched->simOf(lp).now() + sched->lookahead();
        ev.key = counter;
        ev.apply = &PingPongNode::apply;
        ev.target = sched->target(other);
        std::memcpy(ev.payload, &counter, sizeof(counter));
        sched->post(lp, other, ev);
    }
};

TEST(PdesScheduler, PingPongAcrossTwoWorkers)
{
    constexpr std::uint64_t rounds = 400;
    PdesScheduler sched(2, 2);
    sched.setLookahead(10);
    PingPongNode nodes[2];
    for (std::uint32_t i = 0; i < 2; ++i) {
        nodes[i] = PingPongNode{&sched, i, rounds, 0};
        sched.setTarget(i, &nodes[i]);
    }
    sched.simOf(0).events().schedule(0, [&nodes] {
        nodes[0].bounce(0);
    });
    const std::uint64_t executed = sched.run();
    EXPECT_EQ(nodes[0].received + nodes[1].received, rounds);
    EXPECT_EQ(sched.crossPosts(), rounds);
    EXPECT_GE(executed, rounds + 1); // kickoff + every bounce
}

/**
 * Randomized message storm: every LP keeps a quota of messages it
 * fires at random other LPs with random (lookahead-respecting)
 * delays, re-triggered by every arrival. Per-LP execution logs must
 * be identical for any worker-thread count — arrival order is
 * real-time-dependent, execution order must not be.
 */
struct StressNode
{
    PdesScheduler *sched = nullptr;
    std::uint32_t lp = 0;
    std::uint32_t nLps = 0;
    Rng rng{0};
    std::uint64_t budget = 0;
    std::uint64_t seq = 0;
    std::vector<std::pair<Tick, std::uint64_t>> log;

    static void
    apply(void *target, const void *payload)
    {
        auto *node = static_cast<StressNode *>(target);
        std::uint64_t key = 0;
        std::memcpy(&key, payload, sizeof(key));
        node->log.emplace_back(node->sched->simOf(node->lp).now(), key);
        node->sendNext();
    }

    void
    sendNext()
    {
        if (budget == 0)
            return;
        --budget;
        std::uint32_t dst = static_cast<std::uint32_t>(
            rng.below(nLps - 1));
        if (dst >= lp)
            ++dst;
        PdesEvent ev;
        ev.when = sched->simOf(lp).now() + sched->lookahead()
            + rng.below(500);
        ev.key = (static_cast<std::uint64_t>(lp) << 32) | ++seq;
        ev.apply = &StressNode::apply;
        ev.target = sched->target(dst);
        std::memcpy(ev.payload, &ev.key, sizeof(ev.key));
        sched->post(lp, dst, ev);
    }
};

std::vector<std::vector<std::pair<Tick, std::uint64_t>>>
runStress(std::uint32_t lps, std::size_t threads)
{
    PdesScheduler sched(lps, threads);
    sched.setLookahead(25);
    std::vector<StressNode> nodes(lps);
    for (std::uint32_t i = 0; i < lps; ++i) {
        nodes[i].sched = &sched;
        nodes[i].lp = i;
        nodes[i].nLps = lps;
        nodes[i].rng = Rng(deriveSeed(11, "stress", std::to_string(i)));
        nodes[i].budget = 500;
        sched.setTarget(i, &nodes[i]);
    }
    for (std::uint32_t i = 0; i < lps; ++i) {
        StressNode *node = &nodes[i];
        // Staggered kickoff, two initial sends per LP so traffic
        // fans out instead of forming one chain.
        sched.simOf(i).events().schedule(i, [node] {
            node->sendNext();
            node->sendNext();
        });
    }
    sched.run();
    // A chain dies when it lands on a node whose budget is spent, so
    // budgets need not fully drain — but sends and executions must
    // balance: every sent message executes exactly once.
    std::uint64_t unspent = 0, logged = 0;
    for (const auto &node : nodes) {
        unspent += node.budget;
        logged += node.log.size();
    }
    EXPECT_EQ(logged + unspent, static_cast<std::uint64_t>(lps) * 500u);
    std::vector<std::vector<std::pair<Tick, std::uint64_t>>> logs;
    logs.reserve(lps);
    for (auto &node : nodes)
        logs.push_back(std::move(node.log));
    return logs;
}

TEST(PdesScheduler, RandomStormIsThreadCountInvariant)
{
    const auto serial = runStress(4, 1);
    const auto threaded = runStress(4, 4);
    ASSERT_EQ(serial.size(), threaded.size());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], threaded[i]) << "LP " << i;
        total += serial[i].size();
    }
    EXPECT_GT(total, 1000u); // the storm actually stormed
}

// --------------------------------------- partitioned injector results

PdesNetworkFactory
pt2ptFactory()
{
    return [](Simulator &sim) -> std::unique_ptr<Network> {
        return std::make_unique<PointToPointNetwork>(
            sim, simulatedConfig());
    };
}

InjectorConfig
pdesCfg(double load, std::uint64_t seed)
{
    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = load;
    cfg.warmup = 300 * tickNs;
    cfg.window = 1500 * tickNs;
    cfg.seed = seed;
    return cfg;
}

void
expectIdentical(const InjectorResult &a, const InjectorResult &b)
{
    EXPECT_EQ(a.offeredLoadPct, b.offeredLoadPct);
    EXPECT_EQ(a.meanLatencyNs, b.meanLatencyNs);
    EXPECT_EQ(a.maxLatencyNs, b.maxLatencyNs);
    EXPECT_EQ(a.p50LatencyNs, b.p50LatencyNs);
    EXPECT_EQ(a.p99LatencyNs, b.p99LatencyNs);
    EXPECT_EQ(a.deliveredBytesPerNsPerSite, b.deliveredBytesPerNsPerSite);
    EXPECT_EQ(a.deliveredPct, b.deliveredPct);
    EXPECT_EQ(a.measuredPackets, b.measuredPackets);
    EXPECT_EQ(a.overflowPackets, b.overflowPackets);
    EXPECT_EQ(a.offeredMeasuredPct, b.offeredMeasuredPct);
}

TEST(PdesInjector, BitIdenticalAcrossLpAndThreadCounts)
{
    const InjectorConfig cfg = pdesCfg(0.25, 99);
    const PdesInjectorResult base =
        runOpenLoopPdes(pt2ptFactory(), cfg, 1, 1);
    EXPECT_EQ(base.effectiveLps, 1u);
    EXPECT_EQ(base.crossPosts, 0u);
    EXPECT_GT(base.result.measuredPackets, 1000u);
    EXPECT_NEAR(base.result.deliveredPct, 25.0, 3.0);
    // The drift-free arrival clock keeps the realized offered load
    // within the final-truncated-arrival slack of the request.
    EXPECT_NEAR(base.result.offeredMeasuredPct, 25.0, 0.5);

    for (const std::uint32_t lps : {2u, 4u, 8u}) {
        for (const std::size_t threads : {std::size_t{1},
                                          std::size_t{3}}) {
            const PdesInjectorResult r =
                runOpenLoopPdes(pt2ptFactory(), cfg, lps, threads);
            EXPECT_EQ(r.effectiveLps, lps);
            EXPECT_GT(r.crossPosts, 0u);
            expectIdentical(base.result, r.result);
        }
    }
}

TEST(PdesInjector, ForwardedTopologyIsLpCountInvariant)
{
    // limited_pt2pt ships forwarded packets' second legs to the
    // forwarder's LP — the one cross-LP event kind beyond final
    // deliveries. Uniform traffic on 8x8 forwards ~78% of packets.
    const PdesNetworkFactory factory =
        [](Simulator &sim) -> std::unique_ptr<Network> {
            return std::make_unique<LimitedPointToPointNetwork>(
                sim, simulatedConfig());
        };
    InjectorConfig cfg = pdesCfg(0.10, 7);
    cfg.window = 1200 * tickNs;
    const PdesInjectorResult base = runOpenLoopPdes(factory, cfg, 1, 1);
    EXPECT_GT(base.result.measuredPackets, 500u);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        const PdesInjectorResult r =
            runOpenLoopPdes(factory, cfg, 4, threads);
        EXPECT_EQ(r.effectiveLps, 4u);
        EXPECT_GT(r.crossPosts, 0u);
        expectIdentical(base.result, r.result);
    }
}

TEST(PdesInjector, ColocatedTopologyCollapsesToOneLp)
{
    const PdesNetworkFactory factory =
        [](Simulator &sim) -> std::unique_ptr<Network> {
            return std::make_unique<TokenRingCrossbar>(
                sim, simulatedConfig());
        };
    InjectorConfig cfg = pdesCfg(0.02, 21);
    cfg.window = 800 * tickNs;
    const PdesInjectorResult a = runOpenLoopPdes(factory, cfg, 4, 4);
    EXPECT_EQ(a.effectiveLps, 1u);
    EXPECT_EQ(a.crossPosts, 0u);
    const PdesInjectorResult b = runOpenLoopPdes(factory, cfg, 1, 1);
    expectIdentical(a.result, b.result);
}

// ------------------------------------------------------ coherence PDES

TEST(PdesCoherence, ReproducibleThroughKeyedDeliveries)
{
    CoherencePdesConfig cfg;
    cfg.transactionsPerSite = 12;
    cfg.mix = SharerMix::moreSharing();
    cfg.seed = 5;
    const CoherencePdesResult a = runCoherencePdes(pt2ptFactory(), cfg);
    EXPECT_EQ(a.effectiveLps, 1u);
    EXPECT_EQ(a.completed, 64u * 12u);
    EXPECT_GT(a.messagesSent, a.completed);
    EXPECT_GT(a.meanOpLatencyNs, 0.0);
    const CoherencePdesResult b = runCoherencePdes(pt2ptFactory(), cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.messagesSent, b.messagesSent);
    EXPECT_EQ(a.meanOpLatencyNs, b.meanOpLatencyNs);
    EXPECT_EQ(a.maxOpLatencyNs, b.maxOpLatencyNs);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
}

// -------------------------------------------------- block partition

TEST(BlockPartition, SingleGroupMapsEverySiteToZero)
{
    const std::vector<std::uint32_t> map =
        PdesScheduler::blockPartition(17, 1);
    ASSERT_EQ(map.size(), 17u);
    for (const std::uint32_t g : map)
        EXPECT_EQ(g, 0u);
}

TEST(BlockPartition, MoreGroupsThanSitesClampsToIdentity)
{
    // lps > sites clamps to one site per LP; effective LP count is
    // the site count, so every group id stays in range.
    const std::vector<std::uint32_t> map =
        PdesScheduler::blockPartition(4, 9);
    ASSERT_EQ(map.size(), 4u);
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_EQ(map[s], s);
}

TEST(BlockPartition, RemainderGoesToLeadingGroups)
{
    // 10 sites over 4 groups: 10 % 4 = 2 leading groups get the
    // extra site -> sizes {3, 3, 2, 2}, contiguous.
    const std::vector<std::uint32_t> expect = {0, 0, 0, 1, 1, 1,
                                               2, 2, 3, 3};
    EXPECT_EQ(PdesScheduler::blockPartition(10, 4), expect);
}

TEST(BlockPartition, ZeroSitesYieldsEmptyMap)
{
    EXPECT_TRUE(PdesScheduler::blockPartition(0, 3).empty());
}

TEST(BlockPartition, ContiguousBalancedBandsProperty)
{
    // The lookahead floor depends on groups being contiguous
    // row-major bands: sweep (sites, lps) and check the map is
    // nondecreasing, every group is non-empty, sizes differ by at
    // most one, and the larger groups come first.
    for (std::uint32_t sites = 1; sites <= 40; ++sites) {
        for (std::uint32_t lps = 1; lps <= 12; ++lps) {
            const std::vector<std::uint32_t> map =
                PdesScheduler::blockPartition(sites, lps);
            ASSERT_EQ(map.size(), sites);
            const std::uint32_t groups = std::min(lps, sites);
            std::vector<std::uint32_t> count(groups, 0);
            for (std::uint32_t s = 0; s < sites; ++s) {
                if (s > 0) {
                    ASSERT_GE(map[s], map[s - 1])
                        << "sites=" << sites << " lps=" << lps;
                    ASSERT_LE(map[s], map[s - 1] + 1);
                }
                ASSERT_LT(map[s], groups);
                ++count[map[s]];
            }
            for (std::uint32_t g = 0; g < groups; ++g) {
                ASSERT_GE(count[g], 1u);
                ASSERT_LE(count[g] - count[groups - 1], 1u);
                if (g > 0) {
                    ASSERT_LE(count[g], count[g - 1]);
                }
            }
        }
    }
}

// ------------------------------------------------ observability

TEST(PdesObservabilityRun, LoadReportTickDomainFieldsAreInvariant)
{
    // Round counts, EOT advances and wall times are real-time
    // diagnostics; everything in the tick domain must be
    // bit-identical for every worker-thread count.
    const InjectorConfig cfg = pdesCfg(0.10, 11);
    const PdesInjectorResult a =
        runOpenLoopPdes(pt2ptFactory(), cfg, 4, 1);
    const PdesInjectorResult b =
        runOpenLoopPdes(pt2ptFactory(), cfg, 4, 3);
    ASSERT_EQ(a.load.lps.size(), 4u);
    ASSERT_EQ(b.load.lps.size(), 4u);
    EXPECT_EQ(a.load.totalExecuted, b.load.totalExecuted);
    EXPECT_EQ(a.load.crossPosts, b.load.crossPosts);
    EXPECT_EQ(a.load.minExecuted, b.load.minExecuted);
    EXPECT_EQ(a.load.maxExecuted, b.load.maxExecuted);
    for (std::uint32_t i = 0; i < 4; ++i) {
        const PdesLpLoad &x = a.load.lps[i];
        const PdesLpLoad &y = b.load.lps[i];
        EXPECT_EQ(x.sites, y.sites);
        EXPECT_EQ(x.executed, y.executed);
        EXPECT_EQ(x.drained, y.drained);
        EXPECT_EQ(x.posts, y.posts);
        EXPECT_EQ(x.consumedTicks, y.consumedTicks);
    }
}

TEST(PdesObservabilityRun, LoadReportInternalConsistency)
{
    const InjectorConfig cfg = pdesCfg(0.10, 13);
    PdesObservability obs;
    obs.timing = true;
    std::string metrics;
    obs.metricsOut = &metrics;
    const PdesInjectorResult r =
        runOpenLoopPdes(pt2ptFactory(), cfg, 4, 2, &obs);
    const PdesLoadReport &load = r.load;
    ASSERT_EQ(load.lps.size(), 4u);
    EXPECT_TRUE(load.timed);
    EXPECT_GT(load.lookahead, 0u);
    EXPECT_EQ(load.totalExecuted, r.eventsExecuted);
    EXPECT_EQ(load.crossPosts, r.crossPosts);
    EXPECT_EQ(load.spills, r.spscSpills);
    std::uint64_t executed = 0, drained = 0, posts = 0;
    for (const PdesLpLoad &lp : load.lps) {
        EXPECT_EQ(lp.rounds, lp.progressRounds + lp.blockedRounds);
        EXPECT_GT(lp.rounds, 0u);
        EXPECT_GE(lp.maxRoundExecuted, 1u);
        // Every round is classified somewhere in the wall split.
        EXPECT_GT(lp.busyWallNs(), 0.0);
        executed += lp.executed;
        drained += lp.drained;
        posts += lp.posts;
    }
    EXPECT_EQ(executed, load.totalExecuted);
    // Every cross post is drained by its destination exactly once.
    EXPECT_EQ(posts, load.crossPosts);
    EXPECT_EQ(drained, load.crossPosts);
    EXPECT_GE(load.eventImbalance, 1.0);
    EXPECT_GE(load.blockedFraction, 0.0);
    EXPECT_LE(load.blockedFraction, 1.0);
    EXPECT_LT(load.criticalLp, 4u);
    // The registry dump names every LP and channel subtree.
    EXPECT_NE(metrics.find("pdes.lp0.executed"), std::string::npos);
    EXPECT_NE(metrics.find("pdes.lp3.granted_ticks"),
              std::string::npos);
    EXPECT_NE(metrics.find("pdes.ch0_1.posts"), std::string::npos);
    EXPECT_NE(metrics.find("pdes.ch3_2.peak_depth"),
              std::string::npos);
    // The report prints without tripping any stream state.
    std::ostringstream table;
    load.print(table);
    EXPECT_NE(table.str().find("critical=lp"), std::string::npos);
}

TEST(PdesObservabilityRun, UntimedRunLeavesWallColumnsZero)
{
    const InjectorConfig cfg = pdesCfg(0.05, 17);
    const PdesInjectorResult r =
        runOpenLoopPdes(pt2ptFactory(), cfg, 2, 2);
    EXPECT_FALSE(r.load.timed);
    for (const PdesLpLoad &lp : r.load.lps) {
        EXPECT_EQ(lp.drainWallNs, 0.0);
        EXPECT_EQ(lp.execWallNs, 0.0);
        EXPECT_EQ(lp.blockedWallNs, 0.0);
        EXPECT_GT(lp.rounds, 0u);
    }
}

TEST(PdesObservabilityRun, ProfileFoldsInFixedLpOrder)
{
    const InjectorConfig cfg = pdesCfg(0.05, 19);
    PdesObservability obs;
    obs.profile = true;
    std::string profile;
    obs.profileOut = &profile;
    runOpenLoopPdes(pt2ptFactory(), cfg, 2, 2, &obs);
    const std::size_t lp0 = profile.find("[pdes lp0 event profile]");
    const std::size_t lp1 = profile.find("[pdes lp1 event profile]");
    ASSERT_NE(lp0, std::string::npos);
    ASSERT_NE(lp1, std::string::npos);
    EXPECT_LT(lp0, lp1);
    EXPECT_NE(profile.find("pdes.cross"), std::string::npos);
}

TEST(PdesTraceRun, ByteIdenticalAcrossWorkerThreadCounts)
{
    const InjectorConfig cfg = pdesCfg(0.10, 23);
    const auto capture = [&cfg](std::size_t threads) {
        TraceSink sink;
        PdesObservability obs;
        obs.trace = &sink;
        const PdesInjectorResult r =
            runOpenLoopPdes(pt2ptFactory(), cfg, 4, threads, &obs);
        EXPECT_EQ(r.effectiveLps, 4u);
        std::ostringstream os;
        sink.writeJson(os);
        return os.str();
    };
    const std::string t1 = capture(1);
    const std::string t3 = capture(3);
    EXPECT_EQ(t1, t3) << "trace must not depend on worker timing";
    std::string err;
    EXPECT_TRUE(jsonValid(t1, &err)) << err;
    // The timeline carries the LP rows, horizon spans, the derived
    // counter tracks and sampled cross-LP flow arrows.
    EXPECT_NE(t1.find("\"pdes horizon\""), std::string::npos);
    EXPECT_NE(t1.find("lp0 sites 0..15"), std::string::npos);
    EXPECT_NE(t1.find("\"horizon\""), std::string::npos);
    EXPECT_NE(t1.find("eot.lp0"), std::string::npos);
    EXPECT_NE(t1.find("eit.floor"), std::string::npos);
    EXPECT_NE(t1.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(t1.find("\"ph\":\"f\""), std::string::npos);
}

TEST(PdesTraceRun, SingleLpTraceHasNoFlowsOrEitFloor)
{
    InjectorConfig cfg = pdesCfg(0.05, 29);
    cfg.window = 800 * tickNs;
    TraceSink sink;
    PdesObservability obs;
    obs.trace = &sink;
    runOpenLoopPdes(pt2ptFactory(), cfg, 1, 1, &obs);
    std::ostringstream os;
    sink.writeJson(os);
    const std::string t = os.str();
    std::string err;
    EXPECT_TRUE(jsonValid(t, &err)) << err;
    EXPECT_NE(t.find("\"horizon\""), std::string::npos);
    // No cross-LP machinery on one LP: no arrows, no EIT floor.
    EXPECT_EQ(t.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_EQ(t.find("eit.floor"), std::string::npos);
}

} // namespace
