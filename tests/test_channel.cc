/**
 * @file
 * Unit and property tests for BusyResource and OpticalChannel: the
 * busy-until scheduling primitives underneath every topology.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "net/channel.hh"
#include "sim/random.hh"

namespace
{

using namespace macrosim;

TEST(BusyResource, StartsIdle)
{
    BusyResource r;
    EXPECT_EQ(r.busyUntil(), 0u);
    EXPECT_EQ(r.nextFree(100), 100u);
}

TEST(BusyResource, BackToBackReservationsQueue)
{
    BusyResource r;
    EXPECT_EQ(r.reserve(0, 10), 0u);
    EXPECT_EQ(r.reserve(0, 10), 10u);
    EXPECT_EQ(r.reserve(5, 10), 20u);
    EXPECT_EQ(r.busyUntil(), 30u);
}

TEST(BusyResource, IdleGapStartsAtEarliest)
{
    BusyResource r;
    r.reserve(0, 10);
    EXPECT_EQ(r.reserve(50, 5), 50u);
    EXPECT_EQ(r.busyUntil(), 55u);
}

TEST(OpticalChannel, BandwidthFromWavelengths)
{
    // Each 20 Gb/s wavelength contributes 2.5 B/ns.
    EXPECT_DOUBLE_EQ(OpticalChannel(1, 0).bandwidthBytesPerNs(), 2.5);
    EXPECT_DOUBLE_EQ(OpticalChannel(2, 0).bandwidthBytesPerNs(), 5.0);
    EXPECT_DOUBLE_EQ(OpticalChannel(16, 0).bandwidthBytesPerNs(),
                     40.0);
    EXPECT_DOUBLE_EQ(OpticalChannel(128, 0).bandwidthBytesPerNs(),
                     320.0);
}

TEST(OpticalChannel, KnownSerializationTimes)
{
    // The paper's channel widths on a 64 B cache line:
    EXPECT_EQ(OpticalChannel(2, 0).serialization(64), 12800u);
    EXPECT_EQ(OpticalChannel(8, 0).serialization(64), 3200u);
    EXPECT_EQ(OpticalChannel(16, 0).serialization(64), 1600u);
    EXPECT_EQ(OpticalChannel(128, 0).serialization(64), 200u);
}

TEST(OpticalChannel, SerializationNeverZero)
{
    // Even one byte on the widest channel takes at least one tick.
    EXPECT_GT(OpticalChannel(1024, 0).serialization(1), 0u);
}

TEST(OpticalChannel, TransmitAddsPropagation)
{
    OpticalChannel ch(2, 250);
    EXPECT_EQ(ch.transmit(0, 64), 12800u + 250u);
    // The next packet queues behind the first's serialization, not
    // its propagation (the wire is a pipeline).
    EXPECT_EQ(ch.transmit(0, 64), 2u * 12800u + 250u);
}

TEST(OpticalChannel, TransmitFromReportsStart)
{
    OpticalChannel ch(2, 100);
    Tick start = 999;
    ch.transmitFrom(40, 64, start);
    EXPECT_EQ(start, 40u);
    ch.transmitFrom(40, 64, start);
    EXPECT_EQ(start, 40u + 12800u);
}

/** Property sweep: serialization is exact, monotone and additive. */
class SerializationProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(SerializationProperty, MatchesClosedForm)
{
    const auto [lambdas, bytes_i] = GetParam();
    const auto bytes = static_cast<std::uint32_t>(bytes_i);
    OpticalChannel ch(lambdas, 0);
    const Tick t = ch.serialization(bytes);
    // Exact rational: bytes*8 bits / (lambdas*20 Gb/s), in ps,
    // rounded up.
    const std::uint64_t num = std::uint64_t{bytes} * 8 * 1000;
    const std::uint64_t den = std::uint64_t{lambdas} * 20;
    EXPECT_EQ(t, (num + den - 1) / den);
    // Monotone in size, antitone in width.
    EXPECT_GE(ch.serialization(bytes + 8), t);
    if (lambdas > 1) {
        EXPECT_LE(t, OpticalChannel(lambdas - 1, 0)
                         .serialization(bytes));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializationProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 8u, 16u, 32u, 128u),
                       ::testing::Values(1, 8, 64, 72, 1024, 4096)));

TEST(OpticalChannel, FifoOrderUnderRandomArrivals)
{
    OpticalChannel ch(8, 500);
    Rng rng(3);
    Tick prev_arrival = 0;
    Tick t = 0;
    for (int i = 0; i < 500; ++i) {
        t += rng.below(4000);
        const Tick arrival = ch.transmit(
            t, static_cast<std::uint32_t>(8 + rng.below(128)));
        EXPECT_GT(arrival, prev_arrival);
        prev_arrival = arrival;
    }
}

} // namespace
