/**
 * @file
 * Tests for requester-side MSHR coalescing: concurrent same-line
 * misses from one site merge into a single transaction.
 */

#include <gtest/gtest.h>

#include "net/pt2pt.hh"
#include "workloads/coherence.hh"

namespace
{

using namespace macrosim;

struct CoalesceFixture : public ::testing::Test
{
    CoalesceFixture()
        : sim(3), net(sim, simulatedConfig()), eng(sim, net, true)
    {}

    Simulator sim;
    PointToPointNetwork net;
    CoherenceEngine eng;
};

TEST_F(CoalesceFixture, SecondReadAttachesToPendingRead)
{
    int done_a = 0, done_b = 0;
    const auto a = eng.startAccess(3, 0x4000, MemOp::Read,
                                   [&](TxnId, Tick) { ++done_a; });
    const auto b = eng.startAccess(3, 0x4000, MemOp::Read,
                                   [&](TxnId, Tick) { ++done_b; });
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b); // same transaction
    sim.run();
    EXPECT_EQ(done_a, 1);
    EXPECT_EQ(done_b, 1);
    EXPECT_EQ(eng.transactionsCompleted(), 1u);
    EXPECT_EQ(eng.coalescedAccesses(), 1u);
    // Two network crossings only (one request, one data).
    EXPECT_EQ(eng.messagesSent(), 2u);
}

TEST_F(CoalesceFixture, ReadAttachesToPendingWrite)
{
    const auto w = eng.startAccess(3, 0x4000, MemOp::Write, nullptr);
    const auto r = eng.startAccess(3, 0x4000, MemOp::Read, nullptr);
    ASSERT_TRUE(w.has_value());
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*w, *r); // GetM grants read permission too
    sim.run();
    EXPECT_EQ(eng.coalescedAccesses(), 1u);
    EXPECT_EQ(eng.l2(3).probe(0x4000), CacheState::Modified);
}

TEST_F(CoalesceFixture, WriteBehindPendingReadIssuesItsOwn)
{
    const auto r = eng.startAccess(3, 0x4000, MemOp::Read, nullptr);
    const auto w = eng.startAccess(3, 0x4000, MemOp::Write, nullptr);
    ASSERT_TRUE(r.has_value());
    ASSERT_TRUE(w.has_value());
    EXPECT_NE(*r, *w); // a read fetch cannot satisfy a write
    sim.run();
    EXPECT_EQ(eng.transactionsCompleted(), 2u);
    EXPECT_EQ(eng.l2(3).probe(0x4000), CacheState::Modified);
}

TEST_F(CoalesceFixture, DifferentSitesNeverCoalesce)
{
    const auto a = eng.startAccess(3, 0x4000, MemOp::Read, nullptr);
    const auto b = eng.startAccess(5, 0x4000, MemOp::Read, nullptr);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(*a, *b);
    sim.run();
    EXPECT_EQ(eng.coalescedAccesses(), 0u);
}

TEST_F(CoalesceFixture, DifferentLinesNeverCoalesce)
{
    const auto a = eng.startAccess(3, 0x4000, MemOp::Read, nullptr);
    const auto b = eng.startAccess(3, 0x4040, MemOp::Read, nullptr);
    EXPECT_NE(*a, *b);
    sim.run();
    EXPECT_EQ(eng.coalescedAccesses(), 0u);
}

TEST_F(CoalesceFixture, CoalescingEndsWhenTheFetchRetires)
{
    eng.startAccess(3, 0x4000, MemOp::Read, nullptr);
    sim.run(); // fetch completes; line resident now
    // A new access is an L2 hit, not a coalesced miss.
    const auto again = eng.startAccess(3, 0x4000, MemOp::Read,
                                       nullptr);
    EXPECT_FALSE(again.has_value());
    EXPECT_EQ(eng.coalescedAccesses(), 0u);
}

TEST_F(CoalesceFixture, ManyCoresPileOntoOneFetch)
{
    // All 8 cores of a site miss the same line back to back (a
    // barrier variable, say): one transaction, eight completions.
    int completions = 0;
    for (int core = 0; core < 8; ++core) {
        eng.startAccess(7, 0x8000, MemOp::Read,
                        [&](TxnId, Tick) { ++completions; });
    }
    sim.run();
    EXPECT_EQ(completions, 8);
    EXPECT_EQ(eng.transactionsCompleted(), 1u);
    EXPECT_EQ(eng.coalescedAccesses(), 7u);
}

} // namespace
