/**
 * @file
 * Tests for the unified telemetry layer: StatRegistry hierarchy,
 * Perfetto trace export (golden JSON for a 3-message micro-run),
 * snapshot determinism across --jobs counts, event-loop profiler
 * count exactness, JSON validation, and the warn_once() latch.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hh"
#include "net/pt2pt.hh"
#include "net/tracer.hh"
#include "sim/logging.hh"
#include "sim/telemetry/json.hh"
#include "sim/telemetry/registry.hh"
#include "sim/telemetry/sampler.hh"
#include "sim/telemetry/trace.hh"
#include "sweep.hh"
#include "workloads/packet_injector.hh"

namespace
{

using namespace macrosim;
using namespace macrosim::bench;

// ---------------------------------------------------------------- //
// StatRegistry hierarchy                                           //
// ---------------------------------------------------------------- //

TEST(StatRegistry, HierarchicalNamesAndValueLookup)
{
    StatRegistry reg;
    Counter c;
    c += 11;
    reg.addCounter("net.tring.grants", c);
    reg.add("net.tring.ch3.occupancy", [] { return 0.25; });

    EXPECT_TRUE(reg.has("net.tring.grants"));
    EXPECT_FALSE(reg.has("net.tring"));
    EXPECT_EQ(reg.value("net.tring.grants"), 11.0);
    EXPECT_EQ(reg.value("net.tring.ch3.occupancy"), 0.25);
}

TEST(StatRegistry, UniquePrefixDisambiguatesInstances)
{
    StatRegistry reg;
    EXPECT_EQ(reg.uniquePrefix("net.pt2pt"), "net.pt2pt");
    reg.add("net.pt2pt.injected", [] { return 0.0; });
    EXPECT_EQ(reg.uniquePrefix("net.pt2pt"), "net.pt2pt#2");
    reg.add("net.pt2pt#2.injected", [] { return 0.0; });
    EXPECT_EQ(reg.uniquePrefix("net.pt2pt"), "net.pt2pt#3");
}

TEST(StatRegistry, PrefixFilteredDump)
{
    StatRegistry reg;
    reg.add("a.x", [] { return 1.0; });
    reg.add("b.y", [] { return 2.0; });
    reg.add("a.z", [] { return 3.0; });

    std::ostringstream os;
    reg.dump(os, "a.");
    EXPECT_EQ(os.str(), "a.x 1\na.z 3\n");
}

TEST(StatRegistry, NetworksRegisterThemselvesOnConstruction)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    const StatRegistry &reg = sim.telemetry();
    // The simulator core and the topology both live in one tree.
    EXPECT_TRUE(reg.has("simcore.executed"));
    EXPECT_TRUE(reg.has("net.pt2pt.injected"));
    EXPECT_TRUE(reg.has("net.pt2pt.occupancy"));
    EXPECT_EQ(net.statPrefix(), "net.pt2pt");
}

// ---------------------------------------------------------------- //
// Perfetto trace export                                            //
// ---------------------------------------------------------------- //

/** The golden Chrome trace-event JSON for a 3-message micro-run. */
const char *const goldenMicroRunJson =
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
    "{\"ph\":\"M\",\"name\":\"process_name\",\"cat\":\"sim\",\"pid\":1,"
    "\"tid\":0,\"args\":{\"name\":\"micro\"}},\n"
    "{\"ph\":\"M\",\"name\":\"thread_name\",\"cat\":\"sim\",\"pid\":1,"
    "\"tid\":0,\"args\":{\"name\":\"site 0\"}},\n"
    "{\"ph\":\"X\",\"name\":\"Data\",\"cat\":\"net.msg\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.000000,\"dur\":0.013450,\"args\":{\"id\":1,"
    "\"dst\":1,\"bytes\":64,\"txn\":1,\"queue_ns\":0,\"ser_ns\":12.8}"
    "},\n"
    "{\"ph\":\"s\",\"name\":\"txn\",\"cat\":\"sim\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.000000,\"id\":1},\n"
    "{\"ph\":\"f\",\"name\":\"txn\",\"cat\":\"sim\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.013450,\"id\":1,\"bp\":\"e\"},\n"
    "{\"ph\":\"X\",\"name\":\"Data\",\"cat\":\"net.msg\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.000000,\"dur\":0.013700,\"args\":{\"id\":2,"
    "\"dst\":2,\"bytes\":64,\"txn\":2,\"queue_ns\":0,\"ser_ns\":12.8}"
    "},\n"
    "{\"ph\":\"s\",\"name\":\"txn\",\"cat\":\"sim\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.000000,\"id\":2},\n"
    "{\"ph\":\"f\",\"name\":\"txn\",\"cat\":\"sim\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.013700,\"id\":2,\"bp\":\"e\"},\n"
    "{\"ph\":\"X\",\"name\":\"Data\",\"cat\":\"net.msg\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.000000,\"dur\":0.013950,\"args\":{\"id\":3,"
    "\"dst\":3,\"bytes\":64,\"txn\":3,\"queue_ns\":0,\"ser_ns\":12.8}"
    "},\n"
    "{\"ph\":\"s\",\"name\":\"txn\",\"cat\":\"sim\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.000000,\"id\":3},\n"
    "{\"ph\":\"f\",\"name\":\"txn\",\"cat\":\"sim\",\"pid\":1,"
    "\"tid\":0,\"ts\":0.013950,\"id\":3,\"bp\":\"e\"}]}\n";

TEST(TraceExport, GoldenJsonForThreeMessageMicroRun)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    MessageTracer tracer(net);
    net.setDefaultHandler([](const Message &) {});
    for (SiteId d = 1; d <= 3; ++d) {
        Message m;
        m.src = 0;
        m.dst = d;
        m.txn = d;
        net.inject(m);
    }
    sim.run();
    ASSERT_EQ(tracer.count(), 3u);

    TraceSink sink;
    tracer.writeTrace(sink, 1, "micro");
    std::ostringstream os;
    sink.writeJson(os);
    EXPECT_EQ(os.str(), goldenMicroRunJson);
    EXPECT_TRUE(jsonValid(os.str()));
}

TEST(TraceExport, OverflowSurfacesInRegistryAndWarnsOnce)
{
    // Must stay the first TraceSink overflow in the binary: the drop
    // warning is a warn_once, latched per-callsite for the whole
    // process, and this test pins that exactly one warning fires no
    // matter how many events are lost.
    StatRegistry reg;
    TraceSink sink(4);
    sink.regStats(reg, "trace.ring");
    EXPECT_EQ(reg.value("trace.ring.dropped"), 0.0);

    setQuiet(true);
    const std::uint64_t warningsBefore = warningsIssued();
    for (int i = 0; i < 10; ++i)
        sink.instant("e" + std::to_string(i), "sim", 0, 0, Tick(i));
    // 10 pushes into a 4-slot ring: 6 dropped, visible through the
    // registered getter.
    EXPECT_EQ(reg.value("trace.ring.events"), 4.0);
    EXPECT_EQ(reg.value("trace.ring.dropped"), 6.0);
    EXPECT_EQ(warningsIssued(), warningsBefore + 1);
}

TEST(TraceExport, RingDropsOldestAndRecordsTheLoss)
{
    TraceSink sink(4);
    for (int i = 0; i < 6; ++i)
        sink.instant("e" + std::to_string(i), "sim", 0, 0, Tick(i));
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 2u);
    EXPECT_EQ(sink.events().front().name, "e2");

    std::ostringstream os;
    sink.writeJson(os);
    EXPECT_NE(os.str().find("trace_dropped_events"),
              std::string::npos);
    EXPECT_TRUE(jsonValid(os.str()));
}

TEST(TraceExport, EscapesNamesAndFormatsTimestampsExactly)
{
    TraceSink sink;
    sink.span("a\"b\\c\n", "cat", 0, 0, 1'234'567, 1);
    std::ostringstream os;
    sink.writeJson(os);
    EXPECT_NE(os.str().find("a\\\"b\\\\c\\n"), std::string::npos);
    // 1'234'567 ps = 1.234567 us, exact fixed-point.
    EXPECT_NE(os.str().find("\"ts\":1.234567"), std::string::npos);
    EXPECT_TRUE(jsonValid(os.str()));
}

// ---------------------------------------------------------------- //
// Snapshot determinism under parallel sweeps                       //
// ---------------------------------------------------------------- //

/** One sweep cell: a short open-loop run with periodic snapshots. */
std::string
snapshotCell(std::uint64_t seed)
{
    Simulator sim(seed);
    PointToPointNetwork net(sim, simulatedConfig());
    SnapshotRecorder rec(sim, 100 * tickNs);
    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = 0.05;
    cfg.warmup = 100 * tickNs;
    cfg.window = 300 * tickNs;
    cfg.seed = seed;
    runOpenLoop(sim, net, cfg);
    return rec.csv();
}

std::string
runSnapshotSweep(std::size_t jobs)
{
    std::vector<SweepJob<std::string>> cells;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        cells.push_back(SweepJob<std::string>{
            "cell" + std::to_string(seed),
            [seed] { return snapshotCell(seed); }});
    }
    const std::vector<std::string> results =
        SweepRunner(jobs, false).run("snap", std::move(cells));
    std::string combined;
    for (const std::string &csv : results)
        combined += csv;
    return combined;
}

TEST(SnapshotDeterminism, IdenticalForAnyJobsCount)
{
    const std::string serial = runSnapshotSweep(1);
    const std::string parallel = runSnapshotSweep(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(PeriodicSampler, TwoSamplersDoNotSustainEachOther)
{
    // Regression: each sampler re-arms only while *model* events are
    // pending. Two samplers counting each other's re-arm events
    // would ping-pong forever after the model drains.
    Simulator sim(1);
    SnapshotRecorder a(sim, 10);
    SnapshotRecorder b(sim, 15);
    sim.events().scheduleAfter(100, [] {});
    sim.run(1'000'000);
    EXPECT_TRUE(sim.events().empty());
    EXPECT_LE(sim.now(), 200u);
    EXPECT_GE(a.rows(), 1u);
    EXPECT_GE(b.rows(), 1u);
}

// ---------------------------------------------------------------- //
// Event-loop profiler                                              //
// ---------------------------------------------------------------- //

TEST(EventProfiler, CountsAreExactPerTag)
{
    EventQueue q;
    q.setProfiling(true);
    for (int i = 0; i < 5; ++i)
        q.schedule(Tick(i + 1), [] {}, "tag.a");
    for (int i = 0; i < 3; ++i)
        q.schedule(Tick(i + 10), [] {}, "tag.b");
    q.schedule(20, [] {}); // untagged
    q.runUntil();

    std::uint64_t a = 0, b = 0, untagged = 0, total = 0;
    for (const EventProfileEntry &e : q.profile()) {
        total += e.count;
        if (e.tag == "tag.a")
            a = e.count;
        else if (e.tag == "tag.b")
            b = e.count;
        else if (e.tag == "(untagged)")
            untagged = e.count;
    }
    EXPECT_EQ(a, 5u);
    EXPECT_EQ(b, 3u);
    EXPECT_EQ(untagged, 1u);
    EXPECT_EQ(total, 9u);
}

TEST(EventProfiler, OffByDefaultAndTogglableMidRun)
{
    EventQueue q;
    EXPECT_FALSE(q.profiling());
    q.schedule(1, [] {}, "tag.x");
    q.runUntil(1);
    EXPECT_TRUE(q.profile().empty());

    // Tags survive on already-scheduled events, so flipping the
    // profiler on mid-simulation attributes them correctly.
    q.schedule(2, [] {}, "tag.y");
    q.setProfiling(true);
    q.runUntil();
    ASSERT_EQ(q.profile().size(), 1u);
    EXPECT_EQ(q.profile()[0].tag, "tag.y");
    EXPECT_EQ(q.profile()[0].count, 1u);
}

TEST(EventProfiler, DumpProfileTableListsEveryTag)
{
    Simulator sim(1);
    sim.events().setProfiling(true);
    PointToPointNetwork net(sim, simulatedConfig());
    net.setDefaultHandler([](const Message &) {});
    Message m;
    m.src = 0;
    m.dst = 5;
    net.inject(m);
    sim.run();

    std::ostringstream os;
    sim.events().dumpProfile(os);
    EXPECT_NE(os.str().find("net.deliver"), std::string::npos);
}

// ---------------------------------------------------------------- //
// JSON validation                                                  //
// ---------------------------------------------------------------- //

TEST(JsonValid, AcceptsWellFormedDocuments)
{
    EXPECT_TRUE(jsonValid("{}"));
    EXPECT_TRUE(jsonValid("[1, 2.5, -3e4, \"x\", true, null]"));
    EXPECT_TRUE(jsonValid("{\"a\":{\"b\":[{}]}, \"c\":\"\\u00e9\"}"));
}

TEST(JsonValid, RejectsMalformedDocumentsWithAnError)
{
    std::string error;
    EXPECT_FALSE(jsonValid("{\"a\":1,}", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(jsonValid("{\"a\":1} trailing", &error));
    EXPECT_FALSE(jsonValid("\"unterminated", &error));
    EXPECT_FALSE(jsonValid("{\"bad\\q\":1}", &error));
    EXPECT_FALSE(jsonValid("01", &error));
    EXPECT_FALSE(jsonValid("", &error));
}

// ---------------------------------------------------------------- //
// warn_once                                                        //
// ---------------------------------------------------------------- //

void
warnFromOneCallsite()
{
    warn_once("telemetry test warning (expected once)");
}

TEST(WarnOnce, LatchesPerCallsite)
{
    setQuiet(true);
    const std::uint64_t before = warningsIssued();
    for (int i = 0; i < 5; ++i)
        warnFromOneCallsite();
    EXPECT_EQ(warningsIssued(), before + 1);
}

} // namespace
