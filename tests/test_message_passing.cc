/**
 * @file
 * Tests for the message-passing (future-work) workloads: barrier
 * correctness, message counts, and network-ordering properties.
 */

#include <gtest/gtest.h>

#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "sim/logging.hh"
#include "workloads/message_passing.hh"

namespace
{

using namespace macrosim;

MpiWorkloadSpec
spec(Collective c, std::uint32_t iters = 3,
     std::uint32_t bytes = 256)
{
    MpiWorkloadSpec s;
    s.collective = c;
    s.iterations = iters;
    s.messageBytes = bytes;
    s.computeTime = 50 * tickNs;
    return s;
}

TEST(MessagePassing, HaloExchangeMessageCount)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    MessagePassingSystem mpi(sim, net,
                             spec(Collective::HaloExchange, 3));
    const MpiResult res = mpi.run();
    // 64 ranks x 4 neighbors x 3 iterations.
    EXPECT_EQ(res.messages, 64u * 4u * 3u);
    EXPECT_EQ(res.iterations, 3u);
    EXPECT_GT(res.runtime, 3u * 50u * tickNs);
}

TEST(MessagePassing, AllToAllMessageCount)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    MessagePassingSystem mpi(sim, net, spec(Collective::AllToAll, 2));
    const MpiResult res = mpi.run();
    EXPECT_EQ(res.messages, 64u * 63u * 2u);
}

TEST(MessagePassing, AllReduceMessageCount)
{
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    MessagePassingSystem mpi(sim, net, spec(Collective::AllReduce, 2));
    const MpiResult res = mpi.run();
    // 64 ranks x log2(64) = 6 rounds x 2 iterations.
    EXPECT_EQ(res.messages, 64u * 6u * 2u);
}

TEST(MessagePassing, AllReduceRoundsAreSequential)
{
    // The per-iteration time of a recursive-doubling all-reduce must
    // be at least log2(64) = 6 serial one-way message latencies.
    Simulator sim(1);
    PointToPointNetwork net(sim, simulatedConfig());
    MpiWorkloadSpec s = spec(Collective::AllReduce, 1, 64);
    s.computeTime = 0;
    MessagePassingSystem mpi(sim, net, s);
    const MpiResult res = mpi.run();
    // One 64 B message on a 5 GB/s channel is ~13 ns minimum.
    EXPECT_GT(res.runtime, 6u * 13u * tickNs);
}

TEST(MessagePassing, IterationsScaleLinearly)
{
    auto runtime = [](std::uint32_t iters) {
        Simulator sim(1);
        PointToPointNetwork net(sim, simulatedConfig());
        MessagePassingSystem mpi(
            sim, net, spec(Collective::HaloExchange, iters));
        return mpi.run().runtime;
    };
    const Tick one = runtime(1);
    const Tick four = runtime(4);
    EXPECT_NEAR(static_cast<double>(four),
                4.0 * static_cast<double>(one),
                0.05 * static_cast<double>(four));
}

TEST(MessagePassing, LimitedP2PWinsHaloExchange)
{
    // Halo exchange maps onto the limited point-to-point network's
    // 20 GB/s row/column links with zero forwarding; the plain
    // point-to-point pushes the same bytes down 5 GB/s channels.
    MpiWorkloadSpec s = spec(Collective::HaloExchange, 3, 4096);

    Simulator sim_a(1);
    LimitedPointToPointNetwork ltd(sim_a, simulatedConfig());
    const auto ltd_res = MessagePassingSystem(sim_a, ltd, s).run();
    EXPECT_EQ(ltd.forwardedPackets(), 0u);

    Simulator sim_b(1);
    PointToPointNetwork p2p(sim_b, simulatedConfig());
    const auto p2p_res = MessagePassingSystem(sim_b, p2p, s).run();

    EXPECT_LT(ltd_res.runtime, p2p_res.runtime);
}

TEST(MessagePassing, TokenRingSuffersOnAllReduce)
{
    // Every all-reduce round is one-to-one traffic: the token ring
    // pays round-trip token latency per message.
    MpiWorkloadSpec s = spec(Collective::AllReduce, 2, 64);

    Simulator sim_a(1);
    TokenRingCrossbar ring(sim_a, simulatedConfig());
    const auto ring_res = MessagePassingSystem(sim_a, ring, s).run();

    Simulator sim_b(1);
    PointToPointNetwork p2p(sim_b, simulatedConfig());
    const auto p2p_res = MessagePassingSystem(sim_b, p2p, s).run();

    EXPECT_GT(ring_res.runtime, p2p_res.runtime);
}

TEST(MessagePassing, AllReduceRejectsNonPowerOfTwo)
{
    Simulator sim(1);
    MacrochipConfig cfg = simulatedConfig();
    cfg.rows = 3;
    cfg.cols = 4;
    cfg.txPerSite = 24; // keep 2 lambdas per channel
    PointToPointNetwork net(sim, cfg);
    EXPECT_THROW(MessagePassingSystem(sim, net,
                                      spec(Collective::AllReduce)),
                 FatalError);
}

TEST(MessagePassing, CollectiveNames)
{
    EXPECT_EQ(to_string(Collective::HaloExchange), "halo-exchange");
    EXPECT_EQ(to_string(Collective::AllToAll), "all-to-all");
    EXPECT_EQ(to_string(Collective::AllReduce), "all-reduce");
}

} // namespace
