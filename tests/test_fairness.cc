/**
 * @file
 * Fairness and starvation-freedom tests for the arbitrated networks:
 * under sustained contention every sender must make progress, and
 * service must be reasonably balanced.
 */

#include <gtest/gtest.h>

#include <map>

#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "net/circuit_switched.hh"
#include "sim/logging.hh"

namespace
{

using namespace macrosim;

TEST(Fairness, TokenRingServesAllContendersEvenly)
{
    // Eight senders hammer one destination with equal backlogs; the
    // circulating token must interleave them rather than starve any.
    Simulator sim(1);
    TokenRingCrossbar net(sim, simulatedConfig());
    std::map<SiteId, int> served;
    net.setDefaultHandler([&](const Message &m) { ++served[m.src]; });

    const int per_sender = 20;
    for (int i = 0; i < per_sender; ++i) {
        for (SiteId src = 0; src < 8; ++src) {
            Message m;
            m.src = src;
            m.dst = 9;
            net.inject(m);
        }
    }
    sim.run();
    ASSERT_EQ(served.size(), 8u);
    for (const auto &[src, n] : served)
        EXPECT_EQ(n, per_sender) << "sender " << src;
}

TEST(Fairness, TokenRingInterleavesRatherThanBatching)
{
    // With all backlogs queued up front, consecutive grants should
    // rotate between senders (the token moves on after each use), not
    // drain one sender completely first.
    Simulator sim(1);
    TokenRingCrossbar net(sim, simulatedConfig());
    std::vector<SiteId> order;
    net.setDefaultHandler([&](const Message &m) {
        order.push_back(m.src);
    });
    for (int i = 0; i < 10; ++i) {
        for (SiteId src : {SiteId{2}, SiteId{5}}) {
            Message m;
            m.src = src;
            m.dst = 20;
            net.inject(m);
        }
    }
    sim.run();
    ASSERT_EQ(order.size(), 20u);
    int switches = 0;
    for (std::size_t i = 1; i < order.size(); ++i)
        switches += (order[i] != order[i - 1]);
    // Perfect interleaving gives 19 switches; batching gives 1.
    EXPECT_GE(switches, 15);
}

TEST(Fairness, TwoPhaseSharesAChannelAmongRowSenders)
{
    // All 8 sites of row 0 send equal backlogs to site 9's shared
    // channel; the distributed round-robin must serve all of them.
    Simulator sim(1);
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    std::map<SiteId, int> served;
    std::map<SiteId, Tick> last;
    net.setDefaultHandler([&](const Message &m) {
        ++served[m.src];
        last[m.src] = m.delivered;
    });
    const int per_sender = 12;
    for (int i = 0; i < per_sender; ++i) {
        for (SiteId src = 0; src < 8; ++src) {
            if (src == 9)
                continue;
            Message m;
            m.src = src;
            m.dst = 9;
            net.inject(m);
        }
    }
    sim.run();
    ASSERT_EQ(served.size(), 8u);
    Tick min_last = maxTick, max_last = 0;
    for (const auto &[src, n] : served) {
        EXPECT_EQ(n, per_sender);
        min_last = std::min(min_last, last[src]);
        max_last = std::max(max_last, last[src]);
    }
    // No sender finishes wildly after the others: the final
    // completions cluster within a small window relative to the
    // whole run.
    EXPECT_LT(ticksToNs(max_last - min_last),
              0.5 * ticksToNs(max_last));
}

TEST(Fairness, CircuitSwitchedControlRoutersAreFifo)
{
    // Setups from one source to increasingly distant destinations,
    // injected in order, complete in order: the hop-by-hop control
    // walk preserves FIFO at every router.
    Simulator sim(1);
    CircuitSwitchedTorus net(sim, simulatedConfig());
    std::vector<std::uint64_t> completion_order;
    net.setDefaultHandler([&](const Message &m) {
        completion_order.push_back(m.cookie);
    });
    for (std::uint64_t i = 0; i < 3; ++i) {
        Message m;
        m.src = 0;
        m.dst = 2; // same path: strictly FIFO
        m.cookie = i;
        net.inject(m);
    }
    sim.run();
    EXPECT_EQ(completion_order,
              (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(Fairness, TokenRingIndependentDestinationsDontInterfere)
{
    // Tokens are per destination: a huge backlog toward site 9 must
    // not delay a lone packet toward site 20.
    Simulator sim(1);
    TokenRingCrossbar busy(sim, simulatedConfig());
    Tick lone_delivery = 0;
    busy.setDefaultHandler([&](const Message &m) {
        if (m.dst == 20)
            lone_delivery = m.delivered;
    });
    for (int i = 0; i < 200; ++i) {
        Message m;
        m.src = static_cast<SiteId>(i % 8);
        m.dst = 9;
        busy.inject(m);
    }
    Message lone;
    lone.src = 0;
    lone.dst = 20;
    busy.inject(lone);
    sim.run();

    Simulator sim2(1);
    TokenRingCrossbar idle(sim2, simulatedConfig());
    Tick idle_delivery = 0;
    idle.setDefaultHandler([&](const Message &m) {
        idle_delivery = m.delivered;
    });
    Message same;
    same.src = 0;
    same.dst = 20;
    idle.inject(same);
    sim2.run();

    EXPECT_EQ(lone_delivery, idle_delivery);
}

} // namespace
