/**
 * @file
 * Unit tests for the network energy model (section 6.3 accounting).
 */

#include <gtest/gtest.h>

#include "net/energy.hh"

namespace
{

using namespace macrosim;

TEST(EnergyModel, StartsAtZero)
{
    EnergyModel e;
    EXPECT_EQ(e.opticalDynamicJoules(), 0.0);
    EXPECT_EQ(e.routerJoules(), 0.0);
    EXPECT_EQ(e.totalJoules(1000), 0.0);
}

TEST(EnergyModel, TransceiverEnergyIs100fJPerBit)
{
    // 35 fJ modulator + 65 fJ receiver.
    EnergyModel e;
    e.countOpticalTransfer(64); // one cache line, one hop
    EXPECT_DOUBLE_EQ(e.opticalDynamicJoules(),
                     64.0 * 8.0 * 100e-15);
    EXPECT_EQ(e.opticalBits(), 512u);
}

TEST(EnergyModel, RouterEnergyIs60pJPerByte)
{
    EnergyModel e;
    e.countRouterHop(64);
    EXPECT_DOUBLE_EQ(e.routerJoules(), 64.0 * 60e-12);
    // Router energy per byte dwarfs transceiver energy per byte
    // (60 pJ vs 0.8 pJ): the figure 9 premise.
    EnergyModel o;
    o.countOpticalTransfer(64);
    EXPECT_GT(e.routerJoules(), 10.0 * o.opticalDynamicJoules());
}

TEST(EnergyModel, StaticIntegratesOverTime)
{
    EnergyModel e(10.0); // 10 W
    // 1 microsecond at 10 W = 10 microjoules.
    EXPECT_NEAR(e.staticJoules(1 * tickUs), 10e-6, 1e-15);
    // Static power scales linearly with time.
    EXPECT_DOUBLE_EQ(e.staticJoules(2 * tickUs),
                     2.0 * e.staticJoules(1 * tickUs));
}

TEST(EnergyModel, TotalsCompose)
{
    EnergyModel e(8.2);
    e.countOpticalTransfer(1000);
    e.countRouterHop(500);
    const Tick t = 100 * tickNs;
    EXPECT_DOUBLE_EQ(e.totalJoules(t),
                     e.staticJoules(t) + e.opticalDynamicJoules()
                         + e.routerJoules());
}

TEST(EnergyModel, EdpIsEnergyTimesDelay)
{
    EnergyModel e(10.0);
    const Tick t = 1 * tickUs;
    EXPECT_NEAR(e.edp(t), e.totalJoules(t) * 1e-6, 1e-18);
    // EDP grows quadratically with runtime for a static-dominated
    // network: the mechanism behind figure 10's 1000x spreads.
    EXPECT_NEAR(e.edp(2 * tickUs) / e.edp(t), 4.0, 1e-9);
}

TEST(EnergyModel, ResetClearsDynamicOnly)
{
    EnergyModel e(5.0);
    e.countOpticalTransfer(100);
    e.countRouterHop(100);
    e.reset();
    EXPECT_EQ(e.opticalDynamicJoules(), 0.0);
    EXPECT_EQ(e.routerJoules(), 0.0);
    EXPECT_DOUBLE_EQ(e.staticWatts(), 5.0);
}

} // namespace
