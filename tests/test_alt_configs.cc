/**
 * @file
 * End-to-end tests on non-default macrochip configurations: a small
 * 4x4 grid and the section 3 full-scale system, exercising every
 * topology, the coherence engine and the trace CPU away from the
 * Table 4 defaults.
 */

#include <gtest/gtest.h>

#include <memory>

#include "net/circuit_switched.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "workloads/trace_cpu.hh"

namespace
{

using namespace macrosim;

MacrochipConfig
smallConfig()
{
    MacrochipConfig cfg = simulatedConfig();
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.txPerSite = 32; // 2 lambdas per destination
    cfg.rxPerSite = 32;
    cfg.coresPerSite = 4;
    return cfg;
}

template <typename Net, typename... Args>
void
exerciseNetwork(const MacrochipConfig &cfg, Args &&...args)
{
    Simulator sim(9);
    Net net(sim, cfg, std::forward<Args>(args)...);
    int delivered = 0;
    net.setDefaultHandler([&](const Message &) { ++delivered; });
    int expected = 0;
    for (SiteId s = 0; s < cfg.siteCount(); ++s) {
        for (SiteId d = 0; d < cfg.siteCount(); d += 3) {
            Message m;
            m.src = s;
            m.dst = d;
            net.inject(m);
            ++expected;
        }
    }
    sim.run();
    EXPECT_EQ(delivered, expected);
    EXPECT_GT(net.laserWatts(), 0.0);
    EXPECT_GT(net.componentCounts().transmitters, 0u);
}

TEST(SmallGrid, PointToPointWorks)
{
    exerciseNetwork<PointToPointNetwork>(smallConfig());
}

TEST(SmallGrid, LimitedPointToPointWorks)
{
    exerciseNetwork<LimitedPointToPointNetwork>(smallConfig());
}

TEST(SmallGrid, TokenRingWorks)
{
    exerciseNetwork<TokenRingCrossbar>(smallConfig());
}

TEST(SmallGrid, CircuitSwitchedWorks)
{
    exerciseNetwork<CircuitSwitchedTorus>(smallConfig());
}

TEST(SmallGrid, TwoPhaseWorks)
{
    exerciseNetwork<TwoPhaseArbitratedNetwork>(smallConfig());
    exerciseNetwork<TwoPhaseArbitratedNetwork>(smallConfig(), true);
}

TEST(SmallGrid, TokenRoundTripScalesWithRingLength)
{
    // 16 sites x 2.5 cm = 40 cm ring = 4 ns = 20 cycles.
    Simulator sim;
    TokenRingCrossbar net(sim, smallConfig());
    EXPECT_EQ(net.tokenRoundTrip(), 4 * tickNs);
}

TEST(SmallGrid, ClosedLoopWorkloadCompletes)
{
    Simulator sim(3);
    PointToPointNetwork net(sim, smallConfig());
    WorkloadSpec spec = workloadByName("swaptions");
    spec.instructionsPerCore = 500;
    const TraceCpuResult res = TraceCpuSystem(sim, net, spec).run();
    EXPECT_EQ(res.instructions, 500u * 64u); // 16 sites x 4 cores
    EXPECT_GT(res.coherenceOps, 0u);
}

TEST(SmallGrid, SyntheticPatternWorkloadCompletes)
{
    // Transpose needs a power-of-two site count: 16 qualifies.
    Simulator sim(3);
    PointToPointNetwork net(sim, smallConfig());
    WorkloadSpec spec = workloadByName("transpose");
    spec.instructionsPerCore = 500;
    const TraceCpuResult res = TraceCpuSystem(sim, net, spec).run();
    EXPECT_GT(res.coherenceOps, 0u);
}

TEST(FullScale, PointToPointCarriesTraffic)
{
    // Section 3 target: 1024 Tx/site -> 16-lambda (40 GB/s)
    // point-to-point channels.
    Simulator sim(5);
    PointToPointNetwork net(sim, fullScaleConfig());
    EXPECT_EQ(net.wavelengthsPerChannel(), 16u);

    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 0;
    m.dst = 1;
    m.bytes = 64;
    net.inject(m);
    sim.run();
    // 64 B at 40 B/ns = 1.6 ns + overheads: 8x faster than the
    // Table 4 system's 12.8 ns serialization.
    EXPECT_EQ(delivered, 200u + 1600u + 250u + 200u);
}

TEST(FullScale, LaserPowerScalesWithWavelengths)
{
    Simulator sim;
    PointToPointNetwork scaled(sim, fullScaleConfig());
    PointToPointNetwork base(sim, simulatedConfig());
    // 8x the wavelengths -> 8x the laser power.
    EXPECT_NEAR(scaled.laserWatts(), 8.0 * base.laserWatts(), 1e-9);
}

} // namespace
