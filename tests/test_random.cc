/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/random.hh"

namespace
{

using namespace macrosim;

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange)
{
    Rng r(1);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 64ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowZeroBoundReturnsZero)
{
    Rng r(1);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(2);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenIsInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = r.between(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng r(4);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(5);
    const double mean = 12.5;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = r.exponential(mean);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, mean, 0.15);
}

TEST(Rng, GeometricMeanIsOneOverP)
{
    Rng r(6);
    const double p = 0.25;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    EXPECT_NEAR(sum / n, 1.0 / p, 0.1);
}

TEST(Rng, GeometricWithPOneIsAlwaysOne)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.geometric(1.0), 1u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(8);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
