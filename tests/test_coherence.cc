/**
 * @file
 * Tests for the MOESI coherence engine: synthetic message sequences
 * (the LS/MS mix machinery) and directory-mode state transitions.
 */

#include <gtest/gtest.h>

#include <optional>

#include "net/pt2pt.hh"
#include "workloads/coherence.hh"

namespace
{

using namespace macrosim;

struct CoherenceFixture : public ::testing::Test
{
    CoherenceFixture()
        : sim(3), net(sim, simulatedConfig())
    {}

    /** Run one synthetic transaction to completion. */
    Tick
    runSynthetic(CoherenceEngine &eng, SiteId req, SiteId home,
                 CoherenceOp op, const std::vector<SiteId> &sharers)
    {
        std::optional<Tick> latency;
        eng.startSynthetic(req, home, op, sharers,
                           [&](TxnId, Tick lat) { latency = lat; });
        sim.run();
        EXPECT_TRUE(latency.has_value());
        return latency.value_or(0);
    }

    Simulator sim;
    PointToPointNetwork net;
};

TEST_F(CoherenceFixture, GetSWithoutSharersFetchesFromMemory)
{
    CoherenceEngine eng(sim, net, false);
    const Tick lat = runSynthetic(eng, 0, 9, CoherenceOp::GetS, {});
    // Request + data reply.
    EXPECT_EQ(eng.messagesSent(), 2u);
    EXPECT_EQ(eng.transactionsCompleted(), 1u);
    // Latency covers two network crossings, the directory lookup and
    // the 50 ns memory access.
    const auto &cfg = net.config();
    EXPECT_GT(lat, cfg.directoryLatency + cfg.memoryLatency);
    EXPECT_LT(lat, cfg.directoryLatency + cfg.memoryLatency
                       + 100 * tickNs);
}

TEST_F(CoherenceFixture, GetSWithSharerForwardsFromOwner)
{
    CoherenceEngine eng(sim, net, false);
    const Tick lat = runSynthetic(eng, 0, 9, CoherenceOp::GetS, {20});
    // Request, forward, data: three messages, no memory access.
    EXPECT_EQ(eng.messagesSent(), 3u);
    const auto &cfg = net.config();
    EXPECT_LT(lat, cfg.memoryLatency + cfg.directoryLatency
                       + 60 * tickNs);
}

TEST_F(CoherenceFixture, GetMWithThreeSharersCollectsAcks)
{
    CoherenceEngine eng(sim, net, false);
    runSynthetic(eng, 0, 9, CoherenceOp::GetM, {20, 30, 40});
    // Request + forward-to-owner + 2 invalidates + 2 acks + data.
    EXPECT_EQ(eng.messagesSent(), 7u);
    EXPECT_EQ(eng.transactionsCompleted(), 1u);
    EXPECT_EQ(eng.inFlight(), 0u);
}

TEST_F(CoherenceFixture, UpgradeInvalidatesAllSharers)
{
    CoherenceEngine eng(sim, net, false);
    runSynthetic(eng, 0, 9, CoherenceOp::Upgrade, {20, 30});
    // Request + 2 invalidates + 2 acks + grant.
    EXPECT_EQ(eng.messagesSent(), 6u);
    EXPECT_EQ(eng.transactionsCompleted(), 1u);
}

TEST_F(CoherenceFixture, PutMIsTwoMessages)
{
    CoherenceEngine eng(sim, net, false);
    runSynthetic(eng, 7, 9, CoherenceOp::PutM, {});
    EXPECT_EQ(eng.messagesSent(), 2u);
}

TEST_F(CoherenceFixture, OpLatencyAccumulatorTracksCompletions)
{
    CoherenceEngine eng(sim, net, false);
    runSynthetic(eng, 0, 9, CoherenceOp::GetS, {});
    runSynthetic(eng, 1, 10, CoherenceOp::GetS, {5});
    EXPECT_EQ(eng.opLatencyNs().count(), 2u);
    EXPECT_GT(eng.opLatencyNs().mean(), 0.0);
}

TEST_F(CoherenceFixture, ConcurrentTransactionsAllComplete)
{
    CoherenceEngine eng(sim, net, false);
    int done = 0;
    for (SiteId s = 0; s < 32; ++s) {
        eng.startSynthetic(s, (s + 11) % 64, CoherenceOp::GetM,
                           {(s + 20) % 64, (s + 40) % 64},
                           [&](TxnId, Tick) { ++done; });
    }
    sim.run();
    EXPECT_EQ(done, 32);
    EXPECT_EQ(eng.inFlight(), 0u);
}

// ---------------------------------------------------------------------
// Directory mode.

struct DirectoryFixture : public CoherenceFixture
{
    DirectoryFixture() : eng(sim, net, true) {}

    /** Run one access to completion; returns false on an L2 hit. */
    bool
    access(SiteId site, Addr addr, MemOp op)
    {
        bool completed = false;
        const auto txn = eng.startAccess(site, addr, op,
                                         [&](TxnId, Tick) {
                                             completed = true;
                                         });
        if (!txn.has_value())
            return false;
        sim.run();
        EXPECT_TRUE(completed);
        return true;
    }

    CoherenceEngine eng;
};

TEST_F(DirectoryFixture, FirstReadInstallsExclusive)
{
    // MOESI E: a read with no other copies is granted Exclusive, so
    // a later local write upgrades silently.
    EXPECT_TRUE(access(3, 0x4000, MemOp::Read));
    EXPECT_EQ(eng.l2(3).probe(0x4000), CacheState::Exclusive);
    // Second read is a pure L2 hit: no transaction.
    EXPECT_FALSE(access(3, 0x4000, MemOp::Read));
    EXPECT_EQ(eng.transactionsCompleted(), 1u);
    // And the silent E -> M write upgrade costs no transaction.
    EXPECT_FALSE(access(3, 0x4000, MemOp::Write));
    EXPECT_EQ(eng.l2(3).probe(0x4000), CacheState::Modified);
}

TEST_F(DirectoryFixture, SecondReaderDemotesToShared)
{
    ASSERT_TRUE(access(3, 0x4000, MemOp::Read)); // Exclusive
    ASSERT_TRUE(access(5, 0x4000, MemOp::Read));
    // The clean Exclusive owner is demoted to Shared (it can no
    // longer upgrade silently); the reader gets Shared.
    EXPECT_EQ(eng.l2(3).probe(0x4000), CacheState::Shared);
    EXPECT_EQ(eng.l2(5).probe(0x4000), CacheState::Shared);
}

TEST_F(DirectoryFixture, WriteMissInstallsModified)
{
    EXPECT_TRUE(access(3, 0x4000, MemOp::Write));
    EXPECT_EQ(eng.l2(3).probe(0x4000), CacheState::Modified);
    // Write hit afterwards: silent.
    EXPECT_FALSE(access(3, 0x4000, MemOp::Write));
}

TEST_F(DirectoryFixture, ReadAfterRemoteWriteForwardsFromOwner)
{
    ASSERT_TRUE(access(3, 0x4000, MemOp::Write));
    const std::uint64_t msgs_before = eng.messagesSent();
    ASSERT_TRUE(access(5, 0x4000, MemOp::Read));
    // Request + forward + data (owner supplies the line).
    EXPECT_EQ(eng.messagesSent() - msgs_before, 3u);
    // MOESI: previous owner keeps an Owned copy, reader gets Shared.
    EXPECT_EQ(eng.l2(3).probe(0x4000), CacheState::Owned);
    EXPECT_EQ(eng.l2(5).probe(0x4000), CacheState::Shared);
}

TEST_F(DirectoryFixture, WriteInvalidatesAllSharers)
{
    ASSERT_TRUE(access(3, 0x4000, MemOp::Write)); // owner
    ASSERT_TRUE(access(5, 0x4000, MemOp::Read));  // sharer
    ASSERT_TRUE(access(6, 0x4000, MemOp::Read));  // sharer
    ASSERT_TRUE(access(9, 0x4000, MemOp::Write)); // new owner
    EXPECT_EQ(eng.l2(9).probe(0x4000), CacheState::Modified);
    EXPECT_FALSE(eng.l2(3).probe(0x4000).has_value());
    EXPECT_FALSE(eng.l2(5).probe(0x4000).has_value());
    EXPECT_FALSE(eng.l2(6).probe(0x4000).has_value());
}

TEST_F(DirectoryFixture, WriteHitOnSharedUsesUpgrade)
{
    ASSERT_TRUE(access(3, 0x4000, MemOp::Read));
    ASSERT_TRUE(access(5, 0x4000, MemOp::Read));
    const std::uint64_t msgs_before = eng.messagesSent();
    // Site 3 writes its Shared copy: upgrade, invalidating site 5.
    ASSERT_TRUE(access(3, 0x4000, MemOp::Write));
    EXPECT_EQ(eng.l2(3).probe(0x4000), CacheState::Modified);
    EXPECT_FALSE(eng.l2(5).probe(0x4000).has_value());
    // Upgrade request + invalidate + ack + grant; no 72 B data.
    EXPECT_EQ(eng.messagesSent() - msgs_before, 4u);
}

TEST_F(DirectoryFixture, CapacityEvictionsEmitWritebacks)
{
    // Write far more distinct lines than the 256 KB L2 holds; dirty
    // victims must generate PutM traffic.
    const std::uint32_t lines = 8192; // 512 KB worth of lines
    for (std::uint32_t i = 0; i < lines; ++i) {
        eng.startAccess(0, static_cast<Addr>(i) * 64, MemOp::Write,
                        nullptr);
    }
    sim.run();
    EXPECT_GT(eng.writebacks(), 0u);
    EXPECT_EQ(eng.inFlight(), 0u);
}

} // namespace
