/**
 * @file
 * Golden regression tests for the analytic package: Table 6
 * component counts and Table 5 laser / static power for every
 * network, pinned to the values the paper reports (and the seed
 * repo reproduces). Refactors of the network descriptors, the link
 * budget, or the sweep engine must not shift these numbers.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <utility>

#include "harness.hh"
#include "sim/random.hh"
#include "workloads/packet_injector.hh"

namespace
{

using namespace macrosim;
using namespace macrosim::bench;

struct GoldenRow
{
    NetId id;
    // Table 6: component counts.
    std::uint64_t transmitters;
    std::uint64_t receivers;
    std::uint64_t waveguides;
    std::uint64_t opticalSwitches;
    std::uint64_t electronicRouters;
    // Table 5: optical + static power, watts.
    double laserWatts;
    double staticWatts;
};

/**
 * Paper values: Table 6 counts are exact; powers are the repo's
 * reproduction of Table 5 (Token-Ring 155 W, Circuit-Switched
 * 245 W, Pt-to-Pt 8 W, Two-Phase 41+1 W, ALT 65.5 W in the paper).
 */
const GoldenRow goldenRows[] = {
    {NetId::TokenRing, 524288, 8192, 32768, 0, 0,
     156.095342, 209.343342},
    {NetId::CircuitSwitched, 8192, 8192, 2048, 1024, 0,
     245.760000, 247.910400},
    {NetId::PointToPoint, 8192, 8192, 3072, 0, 0,
     8.192000, 9.830400},
    {NetId::LimitedPtToPt, 8192, 8192, 3072, 0, 128,
     8.192000, 9.830400},
    {NetId::TwoPhase, 8192, 8192, 4096, 15872, 0,
     42.081258, 51.655658},
    {NetId::TwoPhaseAlt, 16384, 8192, 4096, 15360, 0,
     66.249879, 76.387479},
};

class GoldenTables : public ::testing::TestWithParam<GoldenRow>
{};

TEST_P(GoldenTables, Table6ComponentCounts)
{
    const GoldenRow &row = GetParam();
    Simulator sim;
    const auto net = makeNetwork(row.id, sim, simulatedConfig());
    const ComponentCounts c = net->componentCounts();
    EXPECT_EQ(c.transmitters, row.transmitters);
    EXPECT_EQ(c.receivers, row.receivers);
    EXPECT_EQ(c.waveguides, row.waveguides);
    EXPECT_EQ(c.opticalSwitches, row.opticalSwitches);
    EXPECT_EQ(c.electronicRouters, row.electronicRouters);
}

TEST_P(GoldenTables, Table5Power)
{
    const GoldenRow &row = GetParam();
    Simulator sim;
    const auto net = makeNetwork(row.id, sim, simulatedConfig());
    EXPECT_NEAR(net->laserWatts(), row.laserWatts, 1e-4);
    EXPECT_NEAR(net->staticWatts(), row.staticWatts, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, GoldenTables, ::testing::ValuesIn(goldenRows),
    [](const ::testing::TestParamInfo<GoldenRow> &row_info) {
        std::string name = netName(row_info.param.id);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/**
 * The hermes extension's 8x8 row, pinned like the paper networks:
 * 64 members x 256 ring lambdas + 12 bridges x 16 lambdas, one
 * electronic router per gateway, and a laser budget paying the
 * 13.6 dB cluster broadcast loss on the ring wavelengths only.
 */
TEST(GoldenTablesExtra, HermesCountsAndPower)
{
    Simulator sim;
    const auto net =
        makeNetwork(NetId::Hermes, sim, simulatedConfig());
    const ComponentCounts c = net->componentCounts();
    EXPECT_EQ(c.transmitters, 16576u);
    EXPECT_EQ(c.receivers, 16576u);
    EXPECT_EQ(c.waveguides, 280u);
    EXPECT_EQ(c.opticalSwitches, 0u);
    EXPECT_EQ(c.electronicRouters, 4u);
    EXPECT_NEAR(net->laserWatts(), 23.874085, 1e-4);
    EXPECT_NEAR(net->staticWatts(), 27.189285, 1e-4);
}

/**
 * 16x16 mini-golden: the generalized descriptors at the scaling
 * study's middle point, pinned for all six networks. The infeasible
 * verdicts are part of the golden surface — they are what the
 * scaling study reports instead of simulated numbers.
 */
struct ScaledGoldenRow
{
    NetId id;
    std::uint64_t transmitters;
    std::uint64_t waveguides;
    std::uint64_t opticalSwitches;
    std::uint64_t electronicRouters;
    double laserWatts;
    double lossDb;
    bool feasible;
};

const ScaledGoldenRow scaledGoldenRows[] = {
    {NetId::TokenRing, 33554432, 524288, 0, 0,
     17278654.723607, 75.857143, false},
    {NetId::CircuitSwitched, 131072, 32768, 4096, 0,
     156542.109176, 55.428355, false},
    {NetId::PointToPoint, 131072, 49152, 0, 0,
     131.072000, 24.657143, true},
    {NetId::LimitedPtToPt, 131072, 49152, 0, 512,
     131.072000, 24.657143, true},
    {NetId::TwoPhase, 131072, 32768, 258048, 0,
     4153.052575, 39.657143, false},
    {NetId::Hermes, 69376, 1504, 0, 16,
     98.568341, 26.812628, true},
};

class ScaledGoldenTables
    : public ::testing::TestWithParam<ScaledGoldenRow>
{};

TEST_P(ScaledGoldenTables, SixteenBySixteenDescriptors)
{
    const ScaledGoldenRow &row = GetParam();
    Simulator sim;
    const auto net = makeNetwork(row.id, sim, scaledConfig(16, 16));
    const ComponentCounts c = net->componentCounts();
    EXPECT_EQ(c.transmitters, row.transmitters);
    EXPECT_EQ(c.waveguides, row.waveguides);
    EXPECT_EQ(c.opticalSwitches, row.opticalSwitches);
    EXPECT_EQ(c.electronicRouters, row.electronicRouters);
    EXPECT_NEAR(net->laserWatts(), row.laserWatts, 1e-3);
    const LinkFeasibility f = net->feasibility();
    EXPECT_NEAR(f.totalLoss.value(), row.lossDb, 1e-4);
    EXPECT_EQ(f.feasible, row.feasible);
}

INSTANTIATE_TEST_SUITE_P(
    SixNetworks, ScaledGoldenTables,
    ::testing::ValuesIn(scaledGoldenRows),
    [](const ::testing::TestParamInfo<ScaledGoldenRow> &row_info) {
        std::string name = netName(row_info.param.id);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/**
 * Seeded 16x16 workload determinism: one open-loop uniform cell per
 * network, run twice with the sweep's seed derivation — identical
 * results, so the scaling study is bit-reproducible at any --jobs.
 */
TEST(GoldenTablesExtra, SixteenBySixteenWorkloadIsDeterministic)
{
    const MacrochipConfig cfg = scaledConfig(16, 16);
    for (const NetId id : extendedNetworks) {
        auto run = [&](int) {
            const std::uint64_t seed =
                deriveSeed(1, "scale-16x16", netName(id));
            Simulator sim(seed);
            auto net = makeNetwork(id, sim, cfg);
            InjectorConfig icfg;
            icfg.pattern = TrafficPattern::Uniform;
            icfg.load = 0.02;
            icfg.warmup = 100 * tickNs;
            icfg.window = 400 * tickNs;
            icfg.seed = seed;
            const InjectorResult r = runOpenLoop(sim, *net, icfg);
            return std::pair(r.measuredPackets, r.meanLatencyNs);
        };
        const auto a = run(0);
        const auto b = run(1);
        EXPECT_GT(a.first, 0u) << netName(id);
        EXPECT_EQ(a.first, b.first) << netName(id);
        EXPECT_DOUBLE_EQ(a.second, b.second) << netName(id);
    }
}

/** The arbitration subnetwork gets its own Table 6 row. */
TEST(GoldenTablesExtra, TwoPhaseArbitrationCounts)
{
    Simulator sim;
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    const ComponentCounts c = net.arbitrationCounts();
    EXPECT_EQ(c.transmitters, 128u);
    EXPECT_EQ(c.receivers, 1024u);
    EXPECT_EQ(c.waveguides, 24u);
    EXPECT_EQ(c.opticalSwitches, 0u);
}

/** The figure ordering itself is part of the published tables. */
TEST(GoldenTablesExtra, NetworkNamesAndOrder)
{
    ASSERT_EQ(allNetworks.size(), 6u);
    EXPECT_EQ(netName(allNetworks[0]), "Token Ring");
    EXPECT_EQ(netName(allNetworks[1]), "Circuit-Switched");
    EXPECT_EQ(netName(allNetworks[2]), "Point-to-Point");
    EXPECT_EQ(netName(allNetworks[3]), "Limited Point-to-Point");
    EXPECT_EQ(netName(allNetworks[4]), "2-Phase Arb.");
    EXPECT_EQ(netName(allNetworks[5]), "2-Phase Arb. ALT");
}

} // namespace
