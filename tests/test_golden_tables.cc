/**
 * @file
 * Golden regression tests for the analytic package: Table 6
 * component counts and Table 5 laser / static power for every
 * network, pinned to the values the paper reports (and the seed
 * repo reproduces). Refactors of the network descriptors, the link
 * budget, or the sweep engine must not shift these numbers.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "harness.hh"

namespace
{

using namespace macrosim;
using namespace macrosim::bench;

struct GoldenRow
{
    NetId id;
    // Table 6: component counts.
    std::uint64_t transmitters;
    std::uint64_t receivers;
    std::uint64_t waveguides;
    std::uint64_t opticalSwitches;
    std::uint64_t electronicRouters;
    // Table 5: optical + static power, watts.
    double laserWatts;
    double staticWatts;
};

/**
 * Paper values: Table 6 counts are exact; powers are the repo's
 * reproduction of Table 5 (Token-Ring 155 W, Circuit-Switched
 * 245 W, Pt-to-Pt 8 W, Two-Phase 41+1 W, ALT 65.5 W in the paper).
 */
const GoldenRow goldenRows[] = {
    {NetId::TokenRing, 524288, 8192, 32768, 0, 0,
     156.095342, 209.343342},
    {NetId::CircuitSwitched, 8192, 8192, 2048, 1024, 0,
     245.760000, 247.910400},
    {NetId::PointToPoint, 8192, 8192, 3072, 0, 0,
     8.192000, 9.830400},
    {NetId::LimitedPtToPt, 8192, 8192, 3072, 0, 128,
     8.192000, 9.830400},
    {NetId::TwoPhase, 8192, 8192, 4096, 15872, 0,
     42.081258, 51.655658},
    {NetId::TwoPhaseAlt, 16384, 8192, 4096, 15360, 0,
     66.249879, 76.387479},
};

class GoldenTables : public ::testing::TestWithParam<GoldenRow>
{};

TEST_P(GoldenTables, Table6ComponentCounts)
{
    const GoldenRow &row = GetParam();
    Simulator sim;
    const auto net = makeNetwork(row.id, sim, simulatedConfig());
    const ComponentCounts c = net->componentCounts();
    EXPECT_EQ(c.transmitters, row.transmitters);
    EXPECT_EQ(c.receivers, row.receivers);
    EXPECT_EQ(c.waveguides, row.waveguides);
    EXPECT_EQ(c.opticalSwitches, row.opticalSwitches);
    EXPECT_EQ(c.electronicRouters, row.electronicRouters);
}

TEST_P(GoldenTables, Table5Power)
{
    const GoldenRow &row = GetParam();
    Simulator sim;
    const auto net = makeNetwork(row.id, sim, simulatedConfig());
    EXPECT_NEAR(net->laserWatts(), row.laserWatts, 1e-4);
    EXPECT_NEAR(net->staticWatts(), row.staticWatts, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, GoldenTables, ::testing::ValuesIn(goldenRows),
    [](const ::testing::TestParamInfo<GoldenRow> &row_info) {
        std::string name = netName(row_info.param.id);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** The arbitration subnetwork gets its own Table 6 row. */
TEST(GoldenTablesExtra, TwoPhaseArbitrationCounts)
{
    Simulator sim;
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    const ComponentCounts c = net.arbitrationCounts();
    EXPECT_EQ(c.transmitters, 128u);
    EXPECT_EQ(c.receivers, 1024u);
    EXPECT_EQ(c.waveguides, 24u);
    EXPECT_EQ(c.opticalSwitches, 0u);
}

/** The figure ordering itself is part of the published tables. */
TEST(GoldenTablesExtra, NetworkNamesAndOrder)
{
    ASSERT_EQ(allNetworks.size(), 6u);
    EXPECT_EQ(netName(allNetworks[0]), "Token Ring");
    EXPECT_EQ(netName(allNetworks[1]), "Circuit-Switched");
    EXPECT_EQ(netName(allNetworks[2]), "Point-to-Point");
    EXPECT_EQ(netName(allNetworks[3]), "Limited Point-to-Point");
    EXPECT_EQ(netName(allNetworks[4]), "2-Phase Arb.");
    EXPECT_EQ(netName(allNetworks[5]), "2-Phase Arb. ALT");
}

} // namespace
