/**
 * @file
 * Differential tests for the batched tick-execution path: every
 * subsystem that registers a batch kernel (network delivery,
 * two-phase slot starts, token-ring grants, fault injection) must
 * produce bit-identical results with batching on and off, because
 * the batch drain preserves the scalar path's execution order
 * exactly. Fuzzed degradation states pin the flat fault-margin
 * kernel against the scalar object-path arithmetic, and the
 * EventQueue's same-tick burst histogram is checked directly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "fault/injector.hh"
#include "harness.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/packet_injector.hh"

namespace
{

using namespace macrosim;
using namespace macrosim::bench;

/** Restore the process-wide dispatch default on scope exit. */
class BatchDefaultGuard
{
  public:
    explicit BatchDefaultGuard(bool on)
        : saved_(batchDispatchDefault())
    {
        setBatchDispatchDefault(on);
    }
    ~BatchDefaultGuard() { setBatchDispatchDefault(saved_); }

  private:
    bool saved_;
};

void
expectIdentical(const InjectorResult &a, const InjectorResult &b)
{
    // Exact double equality, not tolerances: the batched drain must
    // replay the scalar event order, so every accumulator stream is
    // the same stream.
    EXPECT_EQ(a.offeredLoadPct, b.offeredLoadPct);
    EXPECT_EQ(a.meanLatencyNs, b.meanLatencyNs);
    EXPECT_EQ(a.maxLatencyNs, b.maxLatencyNs);
    EXPECT_EQ(a.p50LatencyNs, b.p50LatencyNs);
    EXPECT_EQ(a.p99LatencyNs, b.p99LatencyNs);
    EXPECT_EQ(a.deliveredBytesPerNsPerSite,
              b.deliveredBytesPerNsPerSite);
    EXPECT_EQ(a.deliveredPct, b.deliveredPct);
    EXPECT_EQ(a.measuredPackets, b.measuredPackets);
    EXPECT_EQ(a.overflowPackets, b.overflowPackets);
    EXPECT_EQ(a.offeredMeasuredPct, b.offeredMeasuredPct);
}

InjectorResult
runCell(NetId id, TrafficPattern pattern, double load, bool batched,
        const std::vector<std::pair<SiteId, SiteId>> &degraded = {},
        const std::vector<std::pair<SiteId, SiteId>> &dead = {})
{
    BatchDefaultGuard guard(batched);
    Simulator sim(17);
    auto net = makeNetwork(id, sim, simulatedConfig());
    EXPECT_EQ(net->batching(), batched);
    // Dead channels drop packets instead of dying: bounded retry,
    // identical in both dispatch modes.
    RetryPolicy retry;
    retry.backoffBase = 16;
    retry.maxAttempts = 3;
    net->setRetryPolicy(retry);
    LinkHealth derated;
    derated.bandwidthFraction = 0.5;
    for (const auto &[a, b] : degraded)
        net->applyLinkHealth(a, b, derated);
    LinkHealth down;
    down.down = true;
    for (const auto &[a, b] : dead)
        net->applyLinkHealth(a, b, down);

    InjectorConfig cfg;
    cfg.pattern = pattern;
    cfg.load = load;
    cfg.warmup = 200 * tickNs;
    cfg.window = 800 * tickNs;
    cfg.seed = 17;
    return runOpenLoop(sim, *net, cfg);
}

/** The networks with batch kernels in their per-tick inner loops. */
const NetId batchedNets[] = {NetId::TokenRing, NetId::TwoPhase,
                             NetId::PointToPoint, NetId::TwoPhaseAlt};

TEST(BatchDifferential, InjectorCellsMatchScalar)
{
    setQuiet(true);
    for (const NetId id : batchedNets) {
        for (const TrafficPattern pattern :
             {TrafficPattern::Uniform, TrafficPattern::Transpose}) {
            const InjectorResult scalar =
                runCell(id, pattern, 0.05, false);
            const InjectorResult batched =
                runCell(id, pattern, 0.05, true);
            SCOPED_TRACE(netName(id) + " / "
                         + std::string(to_string(pattern)));
            expectIdentical(scalar, batched);
        }
    }
}

TEST(BatchDifferential, DeadAndMaskedChannelsMatchScalar)
{
    setQuiet(true);
    for (const NetId id : {NetId::TokenRing, NetId::TwoPhase}) {
        Simulator probe;
        const auto links =
            makeNetwork(id, probe, simulatedConfig())->faultableLinks();
        ASSERT_FALSE(links.empty());
        // Mask a third of the channels to half width, kill another
        // third — the arbitration loops must take the degraded and
        // dead branches identically in both modes.
        std::vector<std::pair<SiteId, SiteId>> degraded, dead;
        for (std::size_t i = 0; i < links.size(); ++i) {
            if (i % 3 == 1)
                degraded.push_back(links[i]);
            else if (i % 3 == 2)
                dead.push_back(links[i]);
        }
        const InjectorResult scalar =
            runCell(id, TrafficPattern::Uniform, 0.1, false,
                    degraded, dead);
        const InjectorResult batched =
            runCell(id, TrafficPattern::Uniform, 0.1, true,
                    degraded, dead);
        SCOPED_TRACE(netName(id));
        expectIdentical(scalar, batched);
    }
}

TEST(BatchDifferential, SingleLiveChannelExtreme)
{
    setQuiet(true);
    // Kill every bundle except one: the grant scan and slot
    // evaluation collapse to the 1-of-N extreme while drops dominate.
    for (const NetId id : {NetId::TokenRing, NetId::TwoPhase}) {
        Simulator probe;
        const auto links =
            makeNetwork(id, probe, simulatedConfig())->faultableLinks();
        std::vector<std::pair<SiteId, SiteId>> dead(links.begin() + 1,
                                                    links.end());
        const InjectorResult scalar =
            runCell(id, TrafficPattern::Uniform, 0.05, false, {},
                    dead);
        const InjectorResult batched =
            runCell(id, TrafficPattern::Uniform, 0.05, true, {},
                    dead);
        SCOPED_TRACE(netName(id));
        expectIdentical(scalar, batched);
    }
}

TEST(BatchDifferential, Fig6RowsAreByteIdentical)
{
    setQuiet(true);
    // The figure benches print rows with fixed printf formats; pin
    // the formatted text, not just the doubles, per figure 6's CSV.
    for (const NetId id : batchedNets) {
        std::string rows[2];
        for (const bool batched : {false, true}) {
            const InjectorResult r = runCell(
                id, TrafficPattern::Uniform, 0.08, batched);
            char row[160];
            std::snprintf(row, sizeof(row),
                          "uniform,%s,%.4f,%.3f,%.3f,%.4f\n",
                          netName(id).c_str(), r.offeredLoadPct,
                          r.meanLatencyNs, r.p99LatencyNs,
                          r.deliveredPct);
            rows[batched ? 1 : 0] = row;
        }
        EXPECT_EQ(rows[0], rows[1]) << netName(id);
    }
}

TEST(BatchDifferential, Table5PowerUnaffectedByDispatchMode)
{
    setQuiet(true);
    for (const NetId id : batchedNets) {
        std::string rows[2];
        for (const bool batched : {false, true}) {
            BatchDefaultGuard guard(batched);
            Simulator sim;
            const auto net = makeNetwork(id, sim, simulatedConfig());
            char row[96];
            std::snprintf(row, sizeof(row), "%s,%.6f,%.6f\n",
                          netName(id).c_str(), net->laserWatts(),
                          net->staticWatts());
            rows[batched ? 1 : 0] = row;
        }
        EXPECT_EQ(rows[0], rows[1]) << netName(id);
    }
}

TEST(BatchDifferential, PdesResultsIdenticalAcrossLpCounts)
{
    setQuiet(true);
    // Batching stays on (the default); the keyed PDES ordering
    // contract must hold with the batch drain active inside each LP.
    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = 0.05;
    cfg.warmup = 200 * tickNs;
    cfg.window = 600 * tickNs;
    cfg.seed = 23;
    const auto factory = [](Simulator &sim) {
        return makeNetwork(NetId::TwoPhase, sim, simulatedConfig());
    };
    const PdesInjectorResult one =
        runOpenLoopPdes(factory, cfg, /*lps=*/1, /*threads=*/1);
    const PdesInjectorResult four =
        runOpenLoopPdes(factory, cfg, /*lps=*/4, /*threads=*/2);
    EXPECT_GE(four.effectiveLps, 1u);
    expectIdentical(one.result, four.result);
}

/** Apply one fuzzed event stream to a scalar and a flat injector. */
TEST(FaultMarginDifferential, FuzzedStatesMatchScalarExactly)
{
    setQuiet(true);
    Simulator simA, simB;
    auto netA =
        makeNetwork(NetId::PointToPoint, simA, simulatedConfig());
    auto netB =
        makeNetwork(NetId::PointToPoint, simB, simulatedConfig());
    FaultInjector scalar(simA, *netA, FaultSchedule{});
    FaultInjector flat(simB, *netB, FaultSchedule{});
    scalar.setBatching(false);
    flat.setBatching(true);
    ASSERT_GT(scalar.trackedLinks(), 0u);
    ASSERT_EQ(scalar.trackedLinks(), flat.trackedLinks());

    const auto links = netA->faultableLinks();
    std::mt19937_64 rng(1234);
    std::uniform_real_distribution<double> mag(0.05, 6.0);
    const FaultKind kinds[] = {
        FaultKind::LaserDroop,   FaultKind::RingDrift,
        FaultKind::WaveguideCreep, FaultKind::ReceiverDegrade,
        FaultKind::ChannelKill,  FaultKind::Repair,
    };

    for (int step = 0; step < 400; ++step) {
        const auto &[a, b] = links[rng() % links.size()];
        FaultEvent ev;
        ev.kind = kinds[rng() % std::size(kinds)];
        ev.target = FaultTarget::channel(a, b);
        ev.magnitudeDb = mag(rng);
        scalar.apply(ev);
        flat.apply(ev);
        // The flat kernel's fold order replicates the object path's,
        // so the margins agree to the last bit, not a tolerance.
        EXPECT_EQ(scalar.marginDbOf(ev.target),
                  flat.marginDbOf(ev.target))
            << "step " << step;
    }

    for (const auto &[a, b] : links) {
        EXPECT_EQ(scalar.marginDbOf(FaultTarget::channel(a, b)),
                  flat.marginDbOf(FaultTarget::channel(a, b)));
    }
    EXPECT_EQ(scalar.sweepMargins(), flat.sweepMargins());
    EXPECT_EQ(scalar.injectedFaults(), flat.injectedFaults());
    EXPECT_EQ(scalar.repairs(), flat.repairs());
    EXPECT_EQ(scalar.linksDown(), flat.linksDown());
    EXPECT_EQ(scalar.linksDerated(), flat.linksDerated());
    EXPECT_EQ(scalar.minMarginDb(), flat.minMarginDb());
}

TEST(FaultMarginDifferential, KillAndRepairExtremes)
{
    setQuiet(true);
    Simulator simA, simB;
    auto netA = makeNetwork(NetId::TokenRing, simA, simulatedConfig());
    auto netB = makeNetwork(NetId::TokenRing, simB, simulatedConfig());
    FaultInjector scalar(simA, *netA, FaultSchedule{});
    FaultInjector flat(simB, *netB, FaultSchedule{});
    scalar.setBatching(false);
    flat.setBatching(true);

    const auto links = netA->faultableLinks();
    // Kill every channel, then repair every channel: both modes walk
    // the same down/derated counter transitions.
    for (const auto &[a, b] : links) {
        FaultEvent kill;
        kill.kind = FaultKind::ChannelKill;
        kill.target = FaultTarget::channel(a, b);
        scalar.apply(kill);
        flat.apply(kill);
    }
    EXPECT_EQ(scalar.linksDown(), links.size());
    EXPECT_EQ(flat.linksDown(), links.size());
    EXPECT_EQ(scalar.sweepMargins(), flat.sweepMargins());
    for (const auto &[a, b] : links) {
        FaultEvent repair;
        repair.kind = FaultKind::Repair;
        repair.target = FaultTarget::channel(a, b);
        scalar.apply(repair);
        flat.apply(repair);
    }
    EXPECT_EQ(scalar.linksDown(), 0u);
    EXPECT_EQ(flat.linksDown(), 0u);
    EXPECT_EQ(scalar.sweepMargins(), flat.sweepMargins());
    EXPECT_EQ(scalar.minMarginDb(), flat.minMarginDb());
}

TEST(BatchQueue, KernelRunsCoalesceAndPreserveOrder)
{
    EventQueue q;
    std::vector<int> order;
    struct Ctx
    {
        std::vector<int> *order;
    } ctx{&order};
    const std::uint16_t k = q.registerBatchKernel(
        "test.batch",
        [](void *c, Tick, const std::uint32_t *payloads,
           std::size_t n) {
            for (std::size_t i = 0; i < n; ++i)
                static_cast<Ctx *>(c)->order->push_back(
                    static_cast<int>(payloads[i]));
        },
        &ctx);

    // Interleave plain callbacks with batch events at one tick; the
    // callback splits the tick's batch into two runs, in seq order.
    q.scheduleBatch(10, k, 1);
    q.scheduleBatch(10, k, 2);
    q.schedule(10, [&order] { order.push_back(-1); }, "test.plain");
    q.scheduleBatch(10, k, 3);
    q.scheduleBatch(20, k, 4);
    while (q.runOne()) {}

    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, -1, 3, 4}));
    EXPECT_EQ(q.stats().batchEvents, 4u);
    EXPECT_EQ(q.stats().batchRuns, 3u);
}

TEST(BatchQueue, CancelledBatchEventsAreSkipped)
{
    EventQueue q;
    std::vector<std::uint32_t> got;
    struct Ctx
    {
        std::vector<std::uint32_t> *got;
    } ctx{&got};
    const std::uint16_t k = q.registerBatchKernel(
        "test.cancel",
        [](void *c, Tick, const std::uint32_t *payloads,
           std::size_t n) {
            for (std::size_t i = 0; i < n; ++i)
                static_cast<Ctx *>(c)->got->push_back(payloads[i]);
        },
        &ctx);

    q.scheduleBatch(5, k, 10);
    const EventId victim = q.scheduleBatch(5, k, 11);
    q.scheduleBatch(5, k, 12);
    EXPECT_TRUE(q.cancel(victim));
    EXPECT_FALSE(q.cancel(victim));
    while (q.runOne()) {}
    EXPECT_EQ(got, (std::vector<std::uint32_t>{10, 12}));
}

TEST(BatchQueue, BurstHistogramBucketsByPowerOfTwo)
{
    EventQueue q;
    int fired = 0;
    // Tick 1: burst of 1. Tick 2: burst of 3 (bucket [2,4)).
    // Tick 3: burst of 8 (bucket [8,16)).
    q.schedule(1, [&fired] { ++fired; }, "t");
    for (int i = 0; i < 3; ++i)
        q.schedule(2, [&fired] { ++fired; }, "t");
    for (int i = 0; i < 8; ++i)
        q.schedule(3, [&fired] { ++fired; }, "t");
    while (q.runOne()) {}
    EXPECT_EQ(fired, 12);
    // The final tick stays buffered until the flush.
    q.flushTickObserver();

    const EventQueueStats &s = q.stats();
    EXPECT_EQ(s.burstHist[0], 1u); // [1, 2)
    EXPECT_EQ(s.burstHist[1], 1u); // [2, 4)
    EXPECT_EQ(s.burstHist[2], 0u); // [4, 8)
    EXPECT_EQ(s.burstHist[3], 1u); // [8, 16)
    EXPECT_EQ(s.maxSameTickBurst, 8u);
}

} // namespace
