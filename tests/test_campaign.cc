/**
 * @file
 * Campaign engine tests (DESIGN.md §13): deterministic cell
 * enumeration, result-table bit-identity across worker counts and
 * across journal-resume splits, journal replay under truncation and
 * corruption, and cooperative cancellation.
 *
 * The journal-replay identity test here is the unit-level half of
 * the acceptance criterion; the service_e2e_smoke script repeats it
 * through a real killed-and-restarted daemon process.
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/campaign.hh"
#include "service/journal.hh"
#include "sim/random.hh"

using namespace macrosim;
using namespace macrosim::service;

namespace
{

std::string
tempPath(const char *name)
{
    return (std::filesystem::path(testing::TempDir()) / name)
        .string();
}

TEST(Campaign, EnumerationIsDeterministicAndOrdered)
{
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    const std::vector<CampaignCell> a = enumerateCells(spec);
    const std::vector<CampaignCell> b = enumerateCells(spec);
    ASSERT_EQ(a.size(), spec.cellCount());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, i);
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].net, b[i].net);
        EXPECT_EQ(a[i].load, b[i].load);
        EXPECT_FALSE(a[i].label.empty());
    }
}

TEST(Campaign, FingerprintCoversEveryField)
{
    const CampaignSpec base = CampaignSpec::smokeInjector();
    const std::uint64_t fp = base.fingerprint();
    EXPECT_EQ(fp, CampaignSpec::smokeInjector().fingerprint());

    CampaignSpec mutated = base;
    mutated.seed += 1;
    EXPECT_NE(mutated.fingerprint(), fp);

    mutated = base;
    mutated.loads.push_back(0.5);
    EXPECT_NE(mutated.fingerprint(), fp);

    mutated = base;
    mutated.windowNs += 1;
    EXPECT_NE(mutated.fingerprint(), fp);

    mutated = base;
    mutated.emitCellStats = !mutated.emitCellStats;
    EXPECT_NE(mutated.fingerprint(), fp);
}

TEST(Campaign, ValidateCatchesBadSpecs)
{
    CampaignSpec spec = CampaignSpec::smokeInjector();
    EXPECT_TRUE(spec.validate().empty());

    spec.patterns = {"no-such-pattern"};
    EXPECT_FALSE(spec.validate().empty());

    spec = CampaignSpec::smokeInjector();
    spec.loads = {1.5};
    EXPECT_FALSE(spec.validate().empty());

    spec = CampaignSpec::smokeInjector();
    spec.networks.clear();
    EXPECT_FALSE(spec.validate().empty());

    spec = CampaignSpec::smokeInjector();
    spec.kind = CampaignKind::WorkloadMatrix;
    spec.workloads.clear();
    EXPECT_FALSE(spec.validate().empty());
}

TEST(Campaign, TableBitIdenticalAcrossJobCounts)
{
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    const std::string t1 = runCampaignOffline(spec, 1).table();
    const std::string t4 = runCampaignOffline(spec, 4).table();
    EXPECT_EQ(t1, t4);
    // %.17g doubles: equal strings means bit-equal results.
    EXPECT_NE(t1.find("fingerprint="), std::string::npos);
}

TEST(Campaign, SingleCellIsAPureFunction)
{
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    const std::vector<CampaignCell> cells = enumerateCells(spec);
    ASSERT_FALSE(cells.empty());
    const CellOutcome a = runCampaignCell(spec, cells[0]);
    const CellOutcome b = runCampaignCell(spec, cells[0]);
    BinSerializer sa, sb;
    a.encode(sa);
    b.encode(sb);
    EXPECT_EQ(sa.buffer(), sb.buffer());
}

TEST(Campaign, MatrixCampaignDeterministicAcrossJobs)
{
    CampaignSpec spec;
    spec.kind = CampaignKind::WorkloadMatrix;
    spec.seed = 1; // the figure benches' root seed
    spec.workloads = {"fft"};
    spec.networks = {NetSel::TokenRing, NetSel::PointToPoint};
    spec.instructionsPerCore = 200;
    ASSERT_TRUE(spec.validate().empty()) << spec.validate();

    const CampaignResult r1 = runCampaignOffline(spec, 1);
    const CampaignResult r3 = runCampaignOffline(spec, 3);
    EXPECT_EQ(r1.table(), r3.table());

    // The matrix cell seed must match the figure benches' derivation
    // (deriveSeed(root, workload, display name)) so a daemon matrix
    // campaign reproduces fig 7-10 streams bit for bit.
    ASSERT_EQ(r1.cells.size(), 2u);
    EXPECT_EQ(r1.cells[0].trace.workload, "fft");
    EXPECT_EQ(r1.cells[0].trace.network, netDisplayName(NetSel::TokenRing));
}

TEST(Campaign, ResumeFromPriorIsBitIdentical)
{
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    const CampaignResult full = runCampaignOffline(spec, 2);

    // Pretend the first half was journaled by a killed run.
    std::map<std::uint32_t, CellOutcome> prior;
    for (std::size_t i = 0; i < full.cells.size() / 2; ++i)
        prior[full.cells[i].index] = full.cells[i];

    const CampaignResult resumed =
        runCampaignOffline(spec, 2, {}, &prior);
    EXPECT_EQ(resumed.table(), full.table());
}

TEST(Campaign, CancelBeforeStartSkipsEverything)
{
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    std::atomic<bool> cancel{true};
    CampaignHooks hooks;
    hooks.cancel = &cancel;
    const CampaignResult r = runCampaignOffline(spec, 2, hooks);
    EXPECT_TRUE(r.interrupted);
    ASSERT_EQ(r.cells.size(), spec.cellCount());
    for (const CellOutcome &cell : r.cells)
        EXPECT_TRUE(cell.skipped) << cell.index;
    const std::string table = r.table();
    EXPECT_NE(table.find("SKIPPED"), std::string::npos);
    EXPECT_NE(table.find("# INTERRUPTED"), std::string::npos);
}

TEST(Campaign, HooksSeeEveryCellInCompletionOrder)
{
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    std::vector<std::uint32_t> doneIndices;
    std::vector<std::size_t> doneCounts;
    CampaignHooks hooks;
    hooks.cellDone = [&doneIndices](const CellOutcome &cell) {
        doneIndices.push_back(cell.index);
    };
    hooks.progress = [&doneCounts](const CampaignProgress &p) {
        doneCounts.push_back(p.done);
        EXPECT_EQ(p.total, 6u);
    };
    runCampaignOffline(spec, 3, hooks);
    ASSERT_EQ(doneIndices.size(), 6u);
    ASSERT_EQ(doneCounts.size(), 6u);
    // Progress counts are monotone 1..6 (serialized under the
    // completion mutex) even with 3 workers racing.
    for (std::size_t i = 0; i < doneCounts.size(); ++i)
        EXPECT_EQ(doneCounts[i], i + 1);
    // Every cell reported exactly once.
    std::vector<std::uint32_t> sorted = doneIndices;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < 6; ++i)
        EXPECT_EQ(sorted[i], i);
}

/** Run @p spec journaling every cell to @p path. */
CampaignResult
runWithJournal(const CampaignSpec &spec, const std::string &path,
               std::size_t stopAfter = SIZE_MAX)
{
    JournalWriter writer;
    EXPECT_TRUE(writer.create(path, 1, spec));
    std::atomic<bool> cancel{false};
    std::size_t written = 0;
    CampaignHooks hooks;
    hooks.cancel = &cancel;
    hooks.cellDone = [&](const CellOutcome &cell) {
        if (written < stopAfter) {
            EXPECT_TRUE(writer.append(cell));
            ++written;
        }
        if (written >= stopAfter)
            cancel.store(true);
    };
    return runCampaignOffline(spec, 2, hooks);
}

TEST(Journal, RoundTripReplay)
{
    const std::string path = tempPath("roundtrip.mjr");
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    const CampaignResult full = runWithJournal(spec, path);

    const JournalContents replay = readJournal(path);
    ASSERT_TRUE(replay.valid) << replay.error;
    EXPECT_FALSE(replay.truncatedTail);
    EXPECT_EQ(replay.jobId, 1u);
    EXPECT_EQ(replay.fingerprint, spec.fingerprint());
    EXPECT_EQ(replay.spec.fingerprint(), spec.fingerprint());
    ASSERT_EQ(replay.cells.size(), full.cells.size());

    // Rebuilding the result purely from the journal reproduces the
    // table byte for byte (doubles travel as bit patterns).
    const CampaignResult rebuilt =
        runCampaignOffline(spec, 1, {}, &replay.cells);
    EXPECT_EQ(rebuilt.table(), full.table());
}

TEST(Journal, PartialJournalResumesBitIdentical)
{
    const std::string path = tempPath("partial.mjr");
    const CampaignSpec spec = CampaignSpec::smokeInjector();

    // Reference: an uninterrupted run.
    const CampaignResult reference = runCampaignOffline(spec, 2);

    // A run that "died" after journaling two cells.
    runWithJournal(spec, path, 2);
    const JournalContents replay = readJournal(path);
    ASSERT_TRUE(replay.valid) << replay.error;
    EXPECT_GE(replay.cells.size(), 2u);
    EXPECT_LT(replay.cells.size(), spec.cellCount());

    const CampaignResult resumed =
        runCampaignOffline(spec, 2, {}, &replay.cells);
    EXPECT_EQ(resumed.table(), reference.table());
}

TEST(Journal, TruncatedTailIsTolerated)
{
    const std::string path = tempPath("truncated.mjr");
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    runWithJournal(spec, path);

    // Chop into the last frame: exactly what a kill mid-fwrite
    // leaves behind.
    const std::uintmax_t size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 7);

    const JournalContents replay = readJournal(path);
    ASSERT_TRUE(replay.valid) << replay.error;
    EXPECT_TRUE(replay.truncatedTail);
    EXPECT_EQ(replay.cells.size(), spec.cellCount() - 1);
}

TEST(Journal, CorruptLengthStopsReplayKeepingPriorCells)
{
    const std::string path = tempPath("corrupt.mjr");
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    runWithJournal(spec, path);

    // Locate the last cell frame's length prefix and trash it so the
    // reader sees an impossible payload size.
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    // Frames: [u32 len][u16 ver][u16 id][body]. Walk to the last one.
    std::size_t off = 0, last = 0;
    while (off + 4 <= bytes.size()) {
        const std::uint32_t len =
            static_cast<std::uint8_t>(bytes[off])
            | (static_cast<std::uint8_t>(bytes[off + 1]) << 8)
            | (static_cast<std::uint8_t>(bytes[off + 2]) << 16)
            | (static_cast<std::uint32_t>(
                   static_cast<std::uint8_t>(bytes[off + 3]))
               << 24);
        last = off;
        off += 4 + len;
    }
    bytes[last + 3] = static_cast<char>(0x7F); // huge length
    std::ofstream outF(path, std::ios::binary | std::ios::trunc);
    outF.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size()));
    outF.close();

    const JournalContents replay = readJournal(path);
    ASSERT_TRUE(replay.valid); // header + earlier cells recovered
    EXPECT_TRUE(replay.truncatedTail);
    EXPECT_FALSE(replay.error.empty());
    EXPECT_EQ(replay.cells.size(), spec.cellCount() - 1);
}

TEST(Journal, NonJournalFileIsRejected)
{
    const std::string path = tempPath("not_a_journal.mjr");
    std::ofstream out(path, std::ios::binary);
    out << "this is not a journal at all, sorry";
    out.close();
    const JournalContents replay = readJournal(path);
    EXPECT_FALSE(replay.valid);
    EXPECT_FALSE(replay.error.empty());
}

TEST(Journal, MissingFileIsInvalid)
{
    const JournalContents replay =
        readJournal(tempPath("does_not_exist.mjr"));
    EXPECT_FALSE(replay.valid);
    EXPECT_FALSE(replay.error.empty());
}

TEST(Journal, AppendAfterReopenExtendsTheSameJournal)
{
    const std::string path = tempPath("reopen.mjr");
    const CampaignSpec spec = CampaignSpec::smokeInjector();
    const CampaignResult full = runCampaignOffline(spec, 2);

    // First process: header + half the cells.
    {
        JournalWriter writer;
        ASSERT_TRUE(writer.create(path, 1, spec));
        for (std::size_t i = 0; i < 3; ++i)
            ASSERT_TRUE(writer.append(full.cells[i]));
    }
    // Resumed process: append the rest.
    {
        JournalWriter writer;
        ASSERT_TRUE(writer.openAppend(path));
        for (std::size_t i = 3; i < full.cells.size(); ++i)
            ASSERT_TRUE(writer.append(full.cells[i]));
    }

    const JournalContents replay = readJournal(path);
    ASSERT_TRUE(replay.valid) << replay.error;
    EXPECT_EQ(replay.cells.size(), full.cells.size());
    const CampaignResult rebuilt =
        runCampaignOffline(spec, 1, {}, &replay.cells);
    EXPECT_EQ(rebuilt.table(), full.table());
}

TEST(Campaign, NetNamesRoundTripThroughParser)
{
    const NetSel all[] = {NetSel::TokenRing,  NetSel::CircuitSwitched,
                          NetSel::PointToPoint, NetSel::LimitedPtToPt,
                          NetSel::TwoPhase,   NetSel::TwoPhaseAlt,
                          NetSel::Hermes};
    for (const NetSel id : all) {
        NetSel back;
        ASSERT_TRUE(netFromString(netShortName(id), &back))
            << netShortName(id);
        EXPECT_EQ(back, id);
        ASSERT_TRUE(netFromString(netDisplayName(id), &back));
        EXPECT_EQ(back, id);
    }
    NetSel out;
    EXPECT_FALSE(netFromString("no-such-network", &out));
}

} // namespace
