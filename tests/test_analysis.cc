/**
 * @file
 * Tests for the section 6.4 scalability/complexity analysis.
 */

#include <gtest/gtest.h>

#include "net/analysis.hh"

namespace
{

using namespace macrosim;

TEST(Analysis, AllNetworksReported)
{
    // The paper's five architectures (plus the ALT variant) in Table
    // 5/6 order, then the hierarchical hermes extension.
    const auto rows = analyzeAllNetworks(simulatedConfig());
    ASSERT_EQ(rows.size(), 7u);
    EXPECT_EQ(rows[0].network, "Token Ring");
    EXPECT_EQ(rows[2].network, "Point-to-Point");
    EXPECT_EQ(rows[6].network, "Hermes");
    for (const auto &r : rows) {
        EXPECT_EQ(r.sites, 64u);
        EXPECT_GT(r.peakTBs, 20.0);
        EXPECT_GT(r.laserWatts, 0.0);
        EXPECT_GT(r.counts.transmitters, 0u);
    }
}

TEST(Analysis, WdmScalingLeavesP2PWaveguidesUnchanged)
{
    // Section 6.4: doubling the WDM factor (and transmitters to use
    // it) doubles point-to-point peak bandwidth with the same number
    // of waveguides.
    MacrochipConfig narrow = simulatedConfig();
    MacrochipConfig wide = simulatedConfig();
    wide.wavelengthsPerWaveguide = 16;
    wide.txPerSite = 256;
    wide.rxPerSite = 256;

    const auto a = analyzeAllNetworks(narrow);
    const auto b = analyzeAllNetworks(wide);
    // Point-to-point: 2x bandwidth, same waveguides.
    EXPECT_NEAR(b[2].peakTBs, 2.0 * a[2].peakTBs, 1e-9);
    EXPECT_EQ(b[2].counts.waveguides, a[2].counts.waveguides);
    EXPECT_LT(b[2].waveguidesPerTBs(), a[2].waveguidesPerTBs());
}

TEST(Analysis, ElectronicP2PGrowsQuadratically)
{
    // A 64-site electronic full mesh at even 16 bits per link needs
    // ~64k wires; 256 sites push it over a million.
    EXPECT_EQ(electronicPointToPointWires(64, 16), 64512u);
    EXPECT_EQ(electronicPointToPointWires(256, 16), 1044480u);
    // Quadratic: 4x the sites, ~16x the wires.
    const double ratio =
        static_cast<double>(electronicPointToPointWires(256, 16))
        / static_cast<double>(electronicPointToPointWires(64, 16));
    EXPECT_NEAR(ratio, 16.0, 0.3);
}

TEST(Analysis, PhotonicP2PWaveguidesGrowSubQuadratically)
{
    // The optical point-to-point's waveguide count grows only
    // linearly in sites (WDM absorbs the fan-out), the paper's
    // central complexity claim.
    MacrochipConfig small = simulatedConfig(); // 64 sites
    MacrochipConfig big = simulatedConfig();
    big.rows = 16;
    big.cols = 16; // 256 sites
    big.txPerSite = 512; // keep 2 lambdas per destination
    big.rxPerSite = 512;

    const auto a = analyzeAllNetworks(small);
    const auto b = analyzeAllNetworks(big);
    const double wg_ratio =
        static_cast<double>(b[2].counts.waveguides)
        / static_cast<double>(a[2].counts.waveguides);
    // 4x sites with 4x transmitters: waveguides grow ~16x... per
    // *chip*, but per unit bandwidth they stay flat, unlike the
    // electronic mesh whose wires-per-bandwidth grows with sites.
    const double bw_ratio = b[2].peakTBs / a[2].peakTBs;
    EXPECT_NEAR(wg_ratio, bw_ratio, 1e-9);
}

TEST(Analysis, WaveguideAreaIsPlausible)
{
    // Point-to-point on the 20 cm Table 4 macrochip: 3072 waveguides
    // x 20 cm x 10 um pitch = 61.4 cm^2, about 15% of the 400 cm^2
    // substrate.
    const auto rows = analyzeAllNetworks(simulatedConfig());
    const auto &p2p = rows[2];
    EXPECT_DOUBLE_EQ(p2p.chipEdgeCm, 20.0);
    EXPECT_NEAR(p2p.waveguideAreaCm2(), 61.44, 0.01);
    EXPECT_NEAR(p2p.substrateFraction(), 0.154, 0.01);
    // The token ring's area-equivalent 32K waveguides would consume
    // more than the whole substrate edge-to-edge: the section 6.4
    // area pressure, quantified.
    const auto &ring = rows[0];
    EXPECT_GT(ring.substrateFraction(), 1.0);
    // Every network's area ordering mirrors its waveguide count.
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        if (rows[i].counts.waveguides
            < rows[i + 1].counts.waveguides) {
            EXPECT_LT(rows[i].waveguideAreaCm2(),
                      rows[i + 1].waveguideAreaCm2());
        }
    }
}

TEST(Analysis, SwitchlessNetworksStaySwitchless)
{
    for (const auto &r : analyzeAllNetworks(simulatedConfig())) {
        if (r.network == "Point-to-Point"
            || r.network == "Token Ring"
            || r.network == "Hermes") {
            EXPECT_EQ(r.counts.opticalSwitches, 0u) << r.network;
        }
    }
}

TEST(Analysis, FullScaleConfigScales)
{
    // The section 3 full-scale system: 1024 Tx/site, 16 lambdas per
    // waveguide, 160+ TB/s.
    const auto rows = analyzeAllNetworks(fullScaleConfig());
    EXPECT_GT(rows[2].peakTBs, 160.0);
    // Point-to-point channels become 16 wavelengths = 40 GB/s each.
    EXPECT_EQ(rows[2].counts.transmitters, 65536u);
}

} // namespace
