/**
 * @file
 * Tests for the Table 3 synthetic traffic patterns.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "arch/config.hh"
#include "sim/logging.hh"
#include "workloads/patterns.hh"

namespace
{

using namespace macrosim;

TEST(Patterns, TransposeSwapsBitHalves)
{
    // 6-bit ids: abcdef -> defabc.
    EXPECT_EQ(transposeOf(0b000001, 6), 0b001000u);
    EXPECT_EQ(transposeOf(0b111000, 6), 0b000111u);
    EXPECT_EQ(transposeOf(0, 6), 0u);
    EXPECT_EQ(transposeOf(0b101101, 6), 0b101101u); // palindrome halves
}

TEST(Patterns, TransposeIsAnInvolution)
{
    for (SiteId s = 0; s < 64; ++s)
        EXPECT_EQ(transposeOf(transposeOf(s, 6), 6), s);
}

TEST(Patterns, ButterflySwapsLsbAndMsb)
{
    EXPECT_EQ(butterflyOf(0b000001, 6), 0b100000u);
    EXPECT_EQ(butterflyOf(0b100000, 6), 0b000001u);
    EXPECT_EQ(butterflyOf(0b100001, 6), 0b100001u); // fixed point
    EXPECT_EQ(butterflyOf(0b011110, 6), 0b011110u); // fixed point
}

TEST(Patterns, ButterflyHalfTheSitesAreFixedPoints)
{
    // Sites whose LSB == MSB map to themselves: modelled as intra-
    // node traffic in section 6.2 ("50% of the communication is
    // intra-node").
    int fixed = 0;
    for (SiteId s = 0; s < 64; ++s)
        fixed += (butterflyOf(s, 6) == s);
    EXPECT_EQ(fixed, 32);
}

TEST(Patterns, UniformCoversAllDestinations)
{
    MacrochipGeometry geom(8, 8);
    DestinationGenerator gen(TrafficPattern::Uniform, geom);
    Rng rng(1);
    std::set<SiteId> seen;
    for (int i = 0; i < 5000; ++i)
        seen.insert(gen.next(0, rng));
    EXPECT_EQ(seen.size(), 64u);
}

TEST(Patterns, NeighborPicksOnlyTheFourNeighbors)
{
    MacrochipGeometry geom(8, 8);
    DestinationGenerator gen(TrafficPattern::Neighbor, geom);
    Rng rng(2);
    // Interior site 27 = (3,3).
    const std::set<SiteId> expected{19, 35, 26, 28};
    std::set<SiteId> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(gen.next(27, rng));
    EXPECT_EQ(seen, expected);
}

TEST(Patterns, NeighborWrapsAtEdges)
{
    MacrochipGeometry geom(8, 8);
    DestinationGenerator gen(TrafficPattern::Neighbor, geom);
    Rng rng(3);
    // Corner site 0 = (0,0): wraps to (0,1),(0,7),(1,0),(7,0).
    const std::set<SiteId> expected{1, 7, 8, 56};
    std::set<SiteId> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(gen.next(0, rng));
    EXPECT_EQ(seen, expected);
}

TEST(Patterns, AllToAllCyclesThroughEveryOtherSite)
{
    MacrochipGeometry geom(8, 8);
    DestinationGenerator gen(TrafficPattern::AllToAll, geom);
    Rng rng(4);
    std::vector<SiteId> dsts;
    for (int i = 0; i < 63; ++i)
        dsts.push_back(gen.next(5, rng));
    std::set<SiteId> unique(dsts.begin(), dsts.end());
    EXPECT_EQ(unique.size(), 63u);
    EXPECT_FALSE(unique.contains(5)); // never itself
    // The cycle repeats after 63 destinations.
    EXPECT_EQ(gen.next(5, rng), dsts.front());
}

TEST(Patterns, AllToAllKeepsIndependentPerSourceCursors)
{
    MacrochipGeometry geom(8, 8);
    DestinationGenerator gen(TrafficPattern::AllToAll, geom);
    Rng rng(5);
    EXPECT_EQ(gen.next(0, rng), 1u);
    EXPECT_EQ(gen.next(1, rng), 2u);
    EXPECT_EQ(gen.next(0, rng), 2u);
    EXPECT_EQ(gen.next(1, rng), 3u);
}

TEST(Patterns, FixedPatternsRejectNonPowerOfTwoGrids)
{
    MacrochipGeometry geom(3, 5);
    EXPECT_THROW(DestinationGenerator(TrafficPattern::Transpose, geom),
                 FatalError);
    EXPECT_THROW(DestinationGenerator(TrafficPattern::Butterfly, geom),
                 FatalError);
    // Random patterns are fine on any grid.
    EXPECT_NO_THROW(DestinationGenerator(TrafficPattern::Uniform,
                                         geom));
}

TEST(Patterns, Names)
{
    EXPECT_EQ(to_string(TrafficPattern::Uniform), "uniform");
    EXPECT_EQ(to_string(TrafficPattern::AllToAll), "all-to-all");
}

} // namespace
