/**
 * @file
 * Randomized property tests for the R x C generalization: geometry
 * monotonicity, directory interleaving, balanced memory-port
 * placement, link-budget scaling, and full reachability on every
 * network (the paper's five plus hermes) at arbitrary grid shapes.
 *
 * Grids are drawn from a fixed-seed Rng so failures reproduce; the
 * analytic properties range over [1..24]^2 (the scaling study's
 * envelope), the simulated ones over small grids where exhaustive
 * all-pairs traffic is cheap.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "harness.hh"
#include "photonics/link_budget.hh"
#include "sim/random.hh"

namespace
{

using namespace macrosim;
using namespace macrosim::bench;

std::uint32_t
randomDim(Rng &rng)
{
    return 1 + static_cast<std::uint32_t>(rng.below(24));
}

TEST(GeometryProperties, RouteLengthsAreSymmetricManhattan)
{
    Rng rng(101);
    for (int iter = 0; iter < 20; ++iter) {
        const std::uint32_t rows = randomDim(rng);
        const std::uint32_t cols = randomDim(rng);
        const MacrochipGeometry g(rows, cols);
        const SiteId a = static_cast<SiteId>(rng.below(g.siteCount()));
        const SiteId b = static_cast<SiteId>(rng.below(g.siteCount()));
        EXPECT_DOUBLE_EQ(g.routeLengthCm(a, b), g.routeLengthCm(b, a));
        EXPECT_LE(g.routeLengthCm(a, b), g.worstCaseRouteCm());
        // Propagation delay is exactly the waveguide flight time of
        // the Manhattan route — no hidden constants.
        EXPECT_EQ(g.propagationDelay(a, b),
                  MacrochipGeometry::waveguideDelay(
                      g.routeLengthCm(a, b)));
        const SiteCoord ca = g.coordOf(a);
        const SiteCoord cb = g.coordOf(b);
        const double manhattan = g.sitePitchCm()
            * (std::abs(static_cast<int>(ca.row)
                        - static_cast<int>(cb.row))
               + std::abs(static_cast<int>(ca.col)
                          - static_cast<int>(cb.col)));
        EXPECT_DOUBLE_EQ(g.routeLengthCm(a, b), manhattan);
    }
}

TEST(GeometryProperties, WorstCaseRouteGrowsMonotonically)
{
    // Growing either grid dimension never shortens the worst route,
    // the hop delay across it, or the serpentine ring.
    Rng rng(102);
    for (int iter = 0; iter < 20; ++iter) {
        const std::uint32_t rows = randomDim(rng);
        const std::uint32_t cols = randomDim(rng);
        const MacrochipGeometry g(rows, cols);
        const MacrochipGeometry taller(rows + 1, cols);
        const MacrochipGeometry wider(rows, cols + 1);
        EXPECT_GT(taller.worstCaseRouteCm(), g.worstCaseRouteCm());
        EXPECT_GT(wider.worstCaseRouteCm(), g.worstCaseRouteCm());
        EXPECT_GT(taller.ringLengthCm(), g.ringLengthCm());
        EXPECT_GE(taller.ringRoundTrip(), g.ringRoundTrip());
        // Corner-to-corner flight time tracks the worst route.
        const SiteId far_corner = g.siteCount() - 1;
        EXPECT_EQ(g.propagationDelay(0, far_corner),
                  MacrochipGeometry::waveguideDelay(
                      g.worstCaseRouteCm()));
    }
}

TEST(GeometryProperties, UnswitchedLinkLossGrowsWithTheGrid)
{
    // The generalized worst-case link loses more as either dimension
    // grows (longer waveguide, more drop-filter passes) and anchors
    // to the paper's canonical 17 dB budget at 8x8.
    EXPECT_NEAR(unswitchedLinkFor(8, 8).totalLoss().value(),
                unswitchedLinkBudget.value(), 1e-9);
    Rng rng(103);
    for (int iter = 0; iter < 20; ++iter) {
        const std::uint32_t rows = randomDim(rng);
        const std::uint32_t cols = randomDim(rng);
        const Decibel loss = unswitchedLinkFor(rows, cols).totalLoss();
        EXPECT_GT(unswitchedLinkFor(rows + 1, cols).totalLoss().value(),
                  loss.value());
        EXPECT_GT(unswitchedLinkFor(rows, cols + 1).totalLoss().value(),
                  loss.value());
        // More loss can only shrink the feasibility margin.
        EXPECT_LE(assessLink(unswitchedLinkFor(rows + 1, cols + 1))
                      .margin.value(),
                  assessLink(unswitchedLinkFor(rows, cols))
                      .margin.value());
    }
}

TEST(GeometryProperties, DirectoryHomesInterleaveBijectively)
{
    // Line interleaving: one period of consecutive line addresses
    // lands on every site exactly once, for any site count, and the
    // mapping is periodic in the site count.
    Rng rng(104);
    for (int iter = 0; iter < 20; ++iter) {
        const std::uint32_t rows = randomDim(rng);
        const std::uint32_t cols = randomDim(rng);
        const std::uint32_t n = rows * cols;
        const std::uint32_t line = 64;
        const Directory dir(n);
        std::vector<int> hits(n, 0);
        const Addr base =
            static_cast<Addr>(rng.below(1 << 20)) * line;
        for (std::uint32_t i = 0; i < n; ++i) {
            const Addr addr = base + static_cast<Addr>(i) * line;
            const SiteId home = dir.homeSite(addr, line);
            ASSERT_LT(home, n);
            ++hits[home];
            // Same line, any byte offset: same home.
            EXPECT_EQ(dir.homeSite(addr + line / 2, line), home);
            // One full period later: same home again.
            EXPECT_EQ(dir.homeSite(
                          addr + static_cast<Addr>(n) * line, line),
                      home);
        }
        for (std::uint32_t s = 0; s < n; ++s)
            EXPECT_EQ(hits[s], 1) << rows << "x" << cols
                                  << " site " << s;
    }
}

TEST(GeometryProperties, MemoryPortPlacementIsBalanced)
{
    // A fixed port budget spreads across any grid with per-site
    // counts differing by at most one, and the per-site base offsets
    // tile [0, total) contiguously — no port shared, none lost.
    Rng rng(105);
    for (int iter = 0; iter < 20; ++iter) {
        const std::uint32_t rows = randomDim(rng);
        const std::uint32_t cols = randomDim(rng);
        MacrochipConfig cfg = scaledConfig(rows, cols);
        cfg.memoryPortsTotal =
            1 + static_cast<std::uint32_t>(rng.below(192));
        ASSERT_EQ(cfg.memoryPortCount(), cfg.memoryPortsTotal);

        const std::uint32_t n = cfg.siteCount();
        std::uint32_t total = 0;
        std::uint32_t lo = cfg.memoryPortsAt(0);
        std::uint32_t hi = lo;
        for (SiteId s = 0; s < n; ++s) {
            const std::uint32_t at = cfg.memoryPortsAt(s);
            lo = std::min(lo, at);
            hi = std::max(hi, at);
            EXPECT_EQ(cfg.memoryPortBase(s), total);
            total += at;
        }
        EXPECT_EQ(total, cfg.memoryPortsTotal);
        EXPECT_LE(hi - lo, 1u);
    }
}

TEST(GeometryProperties, EverySiteReachableOnEveryNetwork)
{
    // All-pairs delivery on random small grids, for all six
    // networks. This is the end-to-end invariant the R x C
    // generalization must preserve: no topology strands a site at
    // any shape, square or not.
    Rng rng(106);
    for (int iter = 0; iter < 4; ++iter) {
        const std::uint32_t rows =
            1 + static_cast<std::uint32_t>(rng.below(5));
        const std::uint32_t cols =
            1 + static_cast<std::uint32_t>(rng.below(5));
        const MacrochipConfig cfg = scaledConfig(rows, cols);
        const std::uint32_t n = cfg.siteCount();
        for (const NetId id : extendedNetworks) {
            Simulator sim(7);
            auto net = makeNetwork(id, sim, cfg);
            std::map<std::uint64_t, int> seen;
            net->setDefaultHandler([&](const Message &m) {
                ++seen[m.cookie];
            });
            for (SiteId src = 0; src < n; ++src) {
                for (SiteId dst = 0; dst < n; ++dst) {
                    Message m;
                    m.src = src;
                    m.dst = dst;
                    m.bytes = 64;
                    m.cookie =
                        static_cast<std::uint64_t>(src) * 1024 + dst;
                    net->inject(m);
                }
            }
            sim.run();
            EXPECT_EQ(seen.size(),
                      static_cast<std::size_t>(n) * n)
                << netName(id) << " on " << rows << "x" << cols;
            for (const auto &[cookie, count] : seen) {
                EXPECT_EQ(count, 1)
                    << netName(id) << " on " << rows << "x" << cols
                    << " cookie " << cookie;
            }
        }
    }
}

TEST(GeometryProperties, ScaledConfigAnchorsToTheSeedAt8x8)
{
    // The generalization is anchored: scaledConfig(8, 8) must be the
    // paper's Table 4 system, bit for bit, so every golden table and
    // figure rides the same code path it always did.
    const MacrochipConfig seed = simulatedConfig();
    const MacrochipConfig gen = scaledConfig(8, 8);
    EXPECT_EQ(gen.rows, seed.rows);
    EXPECT_EQ(gen.cols, seed.cols);
    EXPECT_EQ(gen.txPerSite, seed.txPerSite);
    EXPECT_EQ(gen.rxPerSite, seed.rxPerSite);
    EXPECT_EQ(gen.wavelengthsPerWaveguide,
              seed.wavelengthsPerWaveguide);
    EXPECT_DOUBLE_EQ(gen.sitePitchCm, seed.sitePitchCm);
    EXPECT_EQ(gen.clockPeriod, seed.clockPeriod);
}

TEST(GeometryProperties, FeasibilityVerdictsAtTheScalingPoints)
{
    // The scaling study's headline, pinned as a property: at 24x24
    // the flat broadcast and switched fabrics blow the launch-power
    // ceiling while the point-to-point family and hermes still close.
    Simulator sim;
    const MacrochipConfig big = scaledConfig(24, 24);
    const std::map<NetId, bool> expected = {
        {NetId::TokenRing, false},
        {NetId::CircuitSwitched, false},
        {NetId::TwoPhase, false},
        {NetId::PointToPoint, true},
        {NetId::LimitedPtToPt, true},
        {NetId::Hermes, true},
    };
    for (const auto &[id, feasible] : expected) {
        auto net = makeNetwork(id, sim, big);
        const LinkFeasibility f = net->feasibility();
        EXPECT_EQ(f.feasible, feasible) << netName(id);
        EXPECT_NEAR(f.margin.value(),
                    maxLaunchPower.value() - f.requiredLaunch.value(),
                    1e-9);
    }
    // And everything closes at the paper's own scale.
    for (const NetId id : extendedNetworks) {
        auto net = makeNetwork(id, sim, simulatedConfig());
        EXPECT_TRUE(net->feasibility().feasible) << netName(id);
    }
}

} // namespace
