/**
 * @file
 * System-level property tests: MOESI single-writer / directory
 * consistency after randomized access storms, network conservation
 * under stress, and bit-exact deterministic replay.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/circuit_switched.hh"
#include "net/limited_pt2pt.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "workloads/coherence.hh"
#include "workloads/patterns.hh"

namespace
{

using namespace macrosim;

// ---------------------------------------------------------------------
// MOESI / directory global invariants.

struct StormFixture : public ::testing::Test
{
    StormFixture()
        : sim(13), net(sim, simulatedConfig()), eng(sim, net, true)
    {}

    /** Random reads/writes from random sites over a line pool. */
    void
    storm(int accesses, std::uint64_t lines, double write_frac,
          std::uint64_t seed)
    {
        Rng rng(seed);
        for (int i = 0; i < accesses; ++i) {
            const SiteId site = static_cast<SiteId>(rng.below(64));
            const Addr addr = rng.below(lines) * 64;
            const MemOp op = rng.chance(write_frac) ? MemOp::Write
                                                    : MemOp::Read;
            eng.startAccess(site, addr, op, nullptr);
            // Occasionally let the system drain to interleave
            // in-flight and quiescent phases.
            if (i % 64 == 63)
                sim.run();
        }
        sim.run();
        ASSERT_EQ(eng.inFlight(), 0u);
    }

    /** Check every directory entry against the actual L2 states. */
    void
    checkInvariants()
    {
        for (SiteId home = 0; home < 64; ++home) {
            eng.directorySlice(home).forEachEntry(
                [&](Addr line, const DirEntry &e) {
                    checkLine(home, line, e);
                });
        }
    }

    void
    checkLine(SiteId home, Addr line, const DirEntry &e)
    {
        // Gather true cache states of this line across all sites.
        int writable = 0; // M or E
        int dirty = 0;    // M or O
        std::map<SiteId, CacheState> holders;
        for (SiteId s = 0; s < 64; ++s) {
            if (const auto st = eng.l2(s).probe(line);
                st.has_value()) {
                holders[s] = *st;
                writable += canWrite(*st);
                dirty += isDirty(*st);
            }
        }

        // Single-writer invariant: never two writable copies, never
        // two dirty owners.
        EXPECT_LE(writable, 1) << "line " << line;
        EXPECT_LE(dirty, 1) << "line " << line;

        // A writable copy anywhere requires the directory to name
        // that site as the exclusive owner.
        for (const auto &[s, st] : holders) {
            if (canWrite(st)) {
                EXPECT_EQ(e.state, DirState::Exclusive)
                    << "line " << line;
                EXPECT_EQ(e.owner, s) << "line " << line;
            }
        }

        // If the directory believes the line is Exclusive, no OTHER
        // site may hold any copy. (The owner itself may have
        // silently evicted a clean line.)
        if (e.state == DirState::Exclusive) {
            for (const auto &[s, st] : holders)
                EXPECT_EQ(s, e.owner) << "line " << line;
        }
        (void)home;
    }

    Simulator sim;
    PointToPointNetwork net;
    CoherenceEngine eng;
};

TEST_F(StormFixture, ReadHeavyStormKeepsInvariants)
{
    storm(4000, 512, 0.1, 7);
    checkInvariants();
}

TEST_F(StormFixture, WriteHeavyStormKeepsInvariants)
{
    storm(4000, 512, 0.7, 8);
    checkInvariants();
}

TEST_F(StormFixture, HotLineStormKeepsInvariants)
{
    // 64 sites hammering 8 lines: maximal invalidation traffic.
    storm(3000, 8, 0.5, 9);
    checkInvariants();
}

TEST_F(StormFixture, CapacityThrashingKeepsInvariants)
{
    // One site writes a working set twice its 4096-line L2:
    // eviction + writeback churn, interleaved with remote readers.
    Rng rng(10);
    for (int i = 0; i < 6000; ++i) {
        const Addr addr = rng.below(8192) * 64;
        eng.startAccess(0, addr, MemOp::Write, nullptr);
        if (i % 16 == 15) {
            eng.startAccess(static_cast<SiteId>(1 + rng.below(63)),
                            addr, MemOp::Read, nullptr);
        }
        if (i % 64 == 63)
            sim.run();
    }
    sim.run();
    ASSERT_EQ(eng.inFlight(), 0u);
    checkInvariants();
    EXPECT_GT(eng.writebacks(), 0u);
}

// ---------------------------------------------------------------------
// Network conservation and determinism under stress.

enum class NetKind
{
    PointToPoint,
    LimitedPointToPoint,
    TokenRing,
    CircuitSwitched,
    TwoPhase,
    TwoPhaseAlt,
};

std::unique_ptr<Network>
makeNetwork(NetKind kind, Simulator &sim)
{
    const MacrochipConfig cfg = simulatedConfig();
    switch (kind) {
      case NetKind::PointToPoint:
        return std::make_unique<PointToPointNetwork>(sim, cfg);
      case NetKind::LimitedPointToPoint:
        return std::make_unique<LimitedPointToPointNetwork>(sim, cfg);
      case NetKind::TokenRing:
        return std::make_unique<TokenRingCrossbar>(sim, cfg);
      case NetKind::CircuitSwitched:
        return std::make_unique<CircuitSwitchedTorus>(sim, cfg);
      case NetKind::TwoPhase:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg);
      case NetKind::TwoPhaseAlt:
        return std::make_unique<TwoPhaseArbitratedNetwork>(sim, cfg,
                                                           true);
    }
    return nullptr;
}

class NetworkStress : public ::testing::TestWithParam<NetKind>
{
};

TEST_P(NetworkStress, RandomStormConservesPackets)
{
    Simulator sim(21);
    auto net = makeNetwork(GetParam(), sim);
    Rng rng(5);

    std::uint64_t delivered_bytes = 0;
    std::uint64_t delivered = 0;
    Tick last_injected = 0;
    net->setDefaultHandler([&](const Message &m) {
        ++delivered;
        delivered_bytes += m.bytes;
        EXPECT_LE(m.created, m.injected);
        EXPECT_LE(m.injected, m.delivered);
    });

    std::uint64_t injected_bytes = 0;
    const int packets = 3000;
    // Inject in bursts spread over time.
    for (int burst = 0; burst < 30; ++burst) {
        sim.events().schedule(
            static_cast<Tick>(burst) * 50 * tickNs, [&, burst] {
                for (int i = 0; i < packets / 30; ++i) {
                    Message m;
                    m.src = static_cast<SiteId>(rng.below(64));
                    m.dst = static_cast<SiteId>(rng.below(64));
                    m.bytes = static_cast<std::uint32_t>(
                        8 + 8 * rng.below(9)); // 8..72 B
                    injected_bytes += m.bytes;
                    net->inject(m);
                    last_injected = sim.now();
                }
            });
    }
    sim.run();

    EXPECT_EQ(delivered, static_cast<std::uint64_t>(packets));
    EXPECT_EQ(delivered_bytes, injected_bytes);
    EXPECT_EQ(net->stats().delivered.value(),
              static_cast<std::uint64_t>(packets));
    EXPECT_EQ(net->stats().bytesDelivered.value(), injected_bytes);
    EXPECT_GE(sim.now(), last_injected);
}

TEST_P(NetworkStress, SameSeedIsBitIdentical)
{
    auto fingerprint = [this] {
        Simulator sim(77);
        auto net = makeNetwork(GetParam(), sim);
        Rng rng(3);
        std::uint64_t hash = 1469598103934665603ull;
        net->setDefaultHandler([&](const Message &m) {
            hash ^= m.delivered + m.src * 131 + m.dst;
            hash *= 1099511628211ull;
        });
        for (int i = 0; i < 500; ++i) {
            Message m;
            m.src = static_cast<SiteId>(rng.below(64));
            m.dst = static_cast<SiteId>(rng.below(64));
            net->inject(m);
        }
        sim.run();
        return hash;
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

TEST_P(NetworkStress, PerPairDeliveryIsFifo)
{
    // Every network must deliver same-(src,dst) packets in injection
    // order: the paper's coherence protocol depends on channel
    // ordering within a virtual network.
    Simulator sim(4);
    auto net = makeNetwork(GetParam(), sim);
    std::map<std::uint64_t, std::uint64_t> last_seq;
    net->setDefaultHandler([&](const Message &m) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(m.src) * 64 + m.dst;
        EXPECT_GT(m.cookie, last_seq[key])
            << "out of order " << m.src << "->" << m.dst;
        last_seq[key] = m.cookie;
    });
    Rng rng(6);
    std::map<std::uint64_t, std::uint64_t> seq;
    for (int i = 0; i < 2000; ++i) {
        Message m;
        m.src = static_cast<SiteId>(rng.below(64));
        m.dst = static_cast<SiteId>(rng.below(64));
        const std::uint64_t key =
            static_cast<std::uint64_t>(m.src) * 64 + m.dst;
        m.cookie = ++seq[key];
        net->inject(m);
    }
    sim.run();
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, NetworkStress,
    ::testing::Values(NetKind::PointToPoint,
                      NetKind::LimitedPointToPoint, NetKind::TokenRing,
                      NetKind::CircuitSwitched, NetKind::TwoPhase,
                      NetKind::TwoPhaseAlt),
    [](const ::testing::TestParamInfo<NetKind> &param_info) {
        switch (param_info.param) {
          case NetKind::PointToPoint: return "PointToPoint";
          case NetKind::LimitedPointToPoint: return "LimitedP2P";
          case NetKind::TokenRing: return "TokenRing";
          case NetKind::CircuitSwitched: return "CircuitSwitched";
          case NetKind::TwoPhase: return "TwoPhase";
          case NetKind::TwoPhaseAlt: return "TwoPhaseAlt";
        }
        return "Unknown";
    });

} // namespace
