/**
 * @file
 * Unit tests for the event queue: ordering, cancellation, determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace
{

using namespace macrosim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickEventsRunFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runUntil();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue q;
    int ran = 0;
    q.schedule(10, [&] { ++ran; });
    q.schedule(20, [&] { ++ran; });
    q.schedule(21, [&] { ++ran; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.size(), 1u);
}

namespace
{

/** Self-rescheduling callable (a lambda cannot capture itself). */
struct Chain
{
    EventQueue &q;
    int &depth;

    void
    operator()() const
    {
        if (++depth < 100)
            q.scheduleAfter(1, Chain{q, depth});
    }
};

} // namespace

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    q.schedule(0, Chain{q, depth});
    q.runUntil();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(q.now(), 99u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.runUntil();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelReturnsFalseForCompletedEvent)
{
    EventQueue q;
    EventId id = q.schedule(1, [] {});
    q.runUntil();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelReturnsFalseTwice)
{
    EventQueue q;
    EventId id = q.schedule(1, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdIsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(invalidEventId));
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelDoesNotDisturbOtherEvents)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    EventId id = q.schedule(10, [&] { order.push_back(2); });
    q.schedule(10, [&] { order.push_back(3); });
    q.cancel(id);
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ExecutedCountsOnlyRunEvents)
{
    EventQueue q;
    q.schedule(1, [] {});
    EventId id = q.schedule(2, [] {});
    q.cancel(id);
    q.schedule(3, [] {});
    q.runUntil();
    EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, RunUntilLimitIgnoresCancelledTombstones)
{
    // Regression: a cancelled entry at when <= limit used to satisfy
    // the limit check, letting runOne() fall through to an event
    // beyond the limit (and drag now() past it) — which silently
    // skewed every warmup/measure window that cancelled a timeout.
    EventQueue q;
    bool b_ran = false;
    EventId a = q.schedule(10, [] {});
    q.schedule(50, [&] { b_ran = true; });
    ASSERT_TRUE(q.cancel(a));
    EXPECT_EQ(q.runUntil(20), 0u);
    EXPECT_FALSE(b_ran);
    EXPECT_LE(q.now(), 20u);
    EXPECT_EQ(q.size(), 1u);
    // The event past the limit still runs once the limit allows it.
    EXPECT_EQ(q.runUntil(50), 1u);
    EXPECT_TRUE(b_ran);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunUntilManyTombstonesBeforeLimit)
{
    EventQueue q;
    int ran = 0;
    std::vector<EventId> ids;
    for (Tick t = 1; t <= 100; ++t)
        ids.push_back(q.schedule(t, [&] { ++ran; }));
    for (EventId id : ids)
        q.cancel(id);
    q.schedule(200, [&] { ++ran; });
    EXPECT_EQ(q.runUntil(150), 0u);
    EXPECT_EQ(ran, 0);
    EXPECT_LE(q.now(), 150u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelReleasesCapturedStateImmediately)
{
    EventQueue q;
    auto payload = std::make_shared<int>(7);
    EventId id = q.schedule(10, [payload] { (void)*payload; });
    EXPECT_EQ(payload.use_count(), 2);
    ASSERT_TRUE(q.cancel(id));
    // The tombstone stays queued, but the callback (and its capture)
    // must already be gone.
    EXPECT_EQ(payload.use_count(), 1);
}

TEST(EventQueue, StaleIdOfRecycledSlotIsRejected)
{
    EventQueue q;
    EventId first = q.schedule(1, [] {});
    q.runUntil();
    // The arena slot of `first` is recycled here; the stale handle
    // must not cancel the new event.
    EventId second = q.schedule(2, [] {});
    EXPECT_FALSE(q.cancel(first));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_TRUE(q.cancel(second));
}

TEST(EventQueue, StatsCountCoreActivity)
{
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(q.schedule(10, [] {}));
    q.cancel(ids[3]);
    q.schedule(20, [] {});
    q.runUntil();
    const EventQueueStats &s = q.stats();
    EXPECT_EQ(s.scheduled, 9u);
    EXPECT_EQ(s.cancelled, 1u);
    EXPECT_EQ(s.executed, 8u);
    EXPECT_EQ(s.peakPending, 8u); // the cancel preceded schedule #9
    EXPECT_EQ(s.maxSameTickBurst, 7u); // tick 10 minus the cancel
    EXPECT_EQ(q.executed(), s.executed);
}

TEST(EventQueue, TickObserverReportsPerTickCounts)
{
    using TickCounts = std::vector<std::pair<Tick, std::uint64_t>>;
    EventQueue q;
    TickCounts seen;
    q.setTickObserver(
        [](void *ctx, Tick t, std::uint64_t n) {
            static_cast<TickCounts *>(ctx)->emplace_back(t, n);
        },
        &seen);
    for (int i = 0; i < 3; ++i)
        q.schedule(5, [] {});
    // An event scheduling into its own tick joins the same burst.
    q.schedule(9, [&q] { q.schedule(9, [] {}); });
    q.schedule(12, [] {});
    q.runUntil();
    // A tick is reported when a later tick starts executing; the
    // final one stays buffered until the flush.
    const TickCounts beforeFlush = {{5, 3}, {9, 2}};
    EXPECT_EQ(seen, beforeFlush);
    q.flushTickObserver();
    const TickCounts all = {{5, 3}, {9, 2}, {12, 1}};
    EXPECT_EQ(seen, all);
    // Nothing ran since the last report: flushing again is a no-op.
    q.flushTickObserver();
    EXPECT_EQ(seen, all);
}

TEST(EventQueue, TickObserverSpansRunUntilSegments)
{
    using TickCounts = std::vector<std::pair<Tick, std::uint64_t>>;
    EventQueue q;
    TickCounts seen;
    q.setTickObserver(
        [](void *ctx, Tick t, std::uint64_t n) {
            static_cast<TickCounts *>(ctx)->emplace_back(t, n);
        },
        &seen);
    q.schedule(5, [] {});
    q.schedule(5, [] {});
    q.schedule(10, [] {});
    // The horizon protocol runs the queue in bounded segments; the
    // stream must look the same as one uninterrupted run.
    q.runUntil(7);
    EXPECT_TRUE(seen.empty()); // tick 5 still buffered
    q.runUntil(20);
    q.flushTickObserver();
    const TickCounts all = {{5, 2}, {10, 1}};
    EXPECT_EQ(seen, all);
}

TEST(EventQueue, TombstoneCompactionPreservesOrder)
{
    // Cancel enough events that the heap compacts, then check the
    // survivors still run in exact (tick, FIFO) order.
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> doomed;
    for (int i = 0; i < 1000; ++i) {
        const Tick when = static_cast<Tick>(1 + (i * 37) % 500);
        if (i % 4 == 0) {
            q.schedule(when, [&order, i] { order.push_back(i); });
        } else {
            doomed.push_back(q.schedule(when, [] {
                ADD_FAILURE() << "cancelled event ran";
            }));
        }
    }
    for (EventId id : doomed)
        ASSERT_TRUE(q.cancel(id));
    EXPECT_GE(q.stats().compactions, 1u);
    q.runUntil();
    ASSERT_EQ(order.size(), 250u);
    // Reconstruct the expected order: by (when, insertion seq).
    std::vector<std::pair<Tick, int>> expected;
    for (int i = 0; i < 1000; i += 4)
        expected.emplace_back(static_cast<Tick>(1 + (i * 37) % 500), i);
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(order[i], expected[i].second);
}

TEST(EventQueue, RegStatsDumpsThroughStatGroup)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.runUntil();
    StatGroup g;
    q.regStats(g, "evq");
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("evq.scheduled 1"), std::string::npos);
    EXPECT_NE(os.str().find("evq.executed 1"), std::string::npos);
    EXPECT_NE(os.str().find("evq.peak_pending 1"), std::string::npos);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runUntil();
    EXPECT_DEATH(q.schedule(50, [] {}), "before now");
}

TEST(EventQueueProfiler, TagsAreInternedNotBorrowed)
{
    // Regression: the profiler used to key its buckets by
    // string_view into caller storage, so a tag freed before the
    // queue left a dangling key. Tags must be copied when interned —
    // under ASan this test crashes if any view still points at the
    // freed buffer.
    EventQueue q;
    q.setProfiling(true);
    {
        auto tag = std::make_unique<char[]>(16);
        std::snprintf(tag.get(), 16, "transient.tag");
        q.schedule(1, [] {}, tag.get());
        q.runOne();
    } // tag storage freed while the queue lives on
    const auto rows = q.profile();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].tag, "transient.tag");
    EXPECT_EQ(rows[0].count, 1u);
    std::ostringstream os;
    q.dumpProfile(os);
    EXPECT_NE(os.str().find("transient.tag"), std::string::npos);
}

TEST(EventQueueProfiler, EqualContentAtDistinctAddressesShares)
{
    // The same tag text arriving via two different pointers (e.g.
    // the same literal in two translation units) must aggregate in
    // one bucket.
    EventQueue q;
    q.setProfiling(true);
    char a[] = "net.hop";
    char b[] = "net.hop";
    ASSERT_NE(static_cast<const char *>(a),
              static_cast<const char *>(b));
    q.schedule(1, [] {}, a);
    q.schedule(2, [] {}, b);
    q.runUntil();
    const auto rows = q.profile();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].tag, "net.hop");
    EXPECT_EQ(rows[0].count, 2u);
}

TEST(EventQueueProfiler, UntaggedEventsAggregate)
{
    EventQueue q;
    q.setProfiling(true);
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.runUntil();
    const auto rows = q.profile();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].tag, "(untagged)");
    EXPECT_EQ(rows[0].count, 2u);
}

TEST(InlineCallback, EmptyAndNullBehave)
{
    InlineCallback cb;
    EXPECT_FALSE(cb);
    InlineCallback null_cb(nullptr);
    EXPECT_FALSE(null_cb);
    cb = [] {};
    EXPECT_TRUE(cb);
    cb = nullptr;
    EXPECT_FALSE(cb);
}

TEST(InlineCallback, MoveTransfersTargetAndEmptiesSource)
{
    int hits = 0;
    InlineCallback a = [&hits] { ++hits; };
    InlineCallback b = std::move(a);
    EXPECT_FALSE(a); // NOLINT: post-move state is specified here
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);
    a = std::move(b);
    EXPECT_FALSE(b); // NOLINT
    a();
    EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, DestroysCapturePromptly)
{
    auto token = std::make_shared<int>(7);
    ASSERT_EQ(token.use_count(), 1);
    {
        InlineCallback cb = [token] { (void)*token; };
        EXPECT_EQ(token.use_count(), 2);
        cb = nullptr; // must run the capture's destructor
        EXPECT_EQ(token.use_count(), 1);
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, DeprecatedStdFunctionShimStillWorks)
{
    // One-release compatibility: out-of-tree std::function callers
    // keep compiling (with a deprecation warning) and keep running.
    int hits = 0;
    std::function<void()> fn = [&hits] { ++hits; };
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    EventQueue q;
    q.schedule(1, fn);
    InlineCallback empty_shim{std::function<void()>{}};
#pragma GCC diagnostic pop
    EXPECT_FALSE(empty_shim); // empty function -> empty callback
    q.runUntil();
    EXPECT_EQ(hits, 1);
}

TEST(Simulator, RunAdvancesTime)
{
    Simulator sim;
    int hits = 0;
    sim.events().schedule(5 * tickNs, [&] { ++hits; });
    sim.events().schedule(7 * tickNs, [&] { ++hits; });
    EXPECT_EQ(sim.run(), 2u);
    EXPECT_EQ(sim.now(), 7 * tickNs);
    EXPECT_EQ(hits, 2);
}

TEST(Simulator, SeededRngIsDeterministic)
{
    Simulator a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_from_c = false;
    for (int i = 0; i < 1000; ++i) {
        const auto va = a.rng().next();
        if (va != b.rng().next())
            all_equal = false;
        if (va != c.rng().next())
            any_diff_from_c = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_from_c);
}

} // namespace
