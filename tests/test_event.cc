/**
 * @file
 * Unit tests for the event queue: ordering, cancellation, determinism.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/simulator.hh"

namespace
{

using namespace macrosim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickEventsRunFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runUntil();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue q;
    int ran = 0;
    q.schedule(10, [&] { ++ran; });
    q.schedule(20, [&] { ++ran; });
    q.schedule(21, [&] { ++ran; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.runUntil();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(q.now(), 99u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.runUntil();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelReturnsFalseForCompletedEvent)
{
    EventQueue q;
    EventId id = q.schedule(1, [] {});
    q.runUntil();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelReturnsFalseTwice)
{
    EventQueue q;
    EventId id = q.schedule(1, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdIsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(invalidEventId));
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelDoesNotDisturbOtherEvents)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    EventId id = q.schedule(10, [&] { order.push_back(2); });
    q.schedule(10, [&] { order.push_back(3); });
    q.cancel(id);
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ExecutedCountsOnlyRunEvents)
{
    EventQueue q;
    q.schedule(1, [] {});
    EventId id = q.schedule(2, [] {});
    q.cancel(id);
    q.schedule(3, [] {});
    q.runUntil();
    EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runUntil();
    EXPECT_DEATH(q.schedule(50, [] {}), "before now");
}

TEST(Simulator, RunAdvancesTime)
{
    Simulator sim;
    int hits = 0;
    sim.events().schedule(5 * tickNs, [&] { ++hits; });
    sim.events().schedule(7 * tickNs, [&] { ++hits; });
    EXPECT_EQ(sim.run(), 2u);
    EXPECT_EQ(sim.now(), 7 * tickNs);
    EXPECT_EQ(hits, 2);
}

TEST(Simulator, SeededRngIsDeterministic)
{
    Simulator a(42), b(42), c(43);
    bool all_equal = true;
    bool any_diff_from_c = false;
    for (int i = 0; i < 1000; ++i) {
        const auto va = a.rng().next();
        if (va != b.rng().next())
            all_equal = false;
        if (va != c.rng().next())
            any_diff_from_c = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_from_c);
}

} // namespace
