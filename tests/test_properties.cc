/**
 * @file
 * Parameterized property sweeps across configuration space:
 * geometry on arbitrary grids, torus routing validity for every site
 * pair, topology mechanism independence properties, and the MSHR
 * stall path of the trace CPU.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "net/circuit_switched.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "net/two_phase.hh"
#include "workloads/trace_cpu.hh"

namespace
{

using namespace macrosim;

// ---------------------------------------------------------------------
// Geometry properties on a sweep of grid shapes.

class GeometrySweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t>>
{
};

TEST_P(GeometrySweep, CoordinateBijection)
{
    const auto [rows, cols] = GetParam();
    MacrochipGeometry g(rows, cols);
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (SiteId id = 0; id < g.siteCount(); ++id) {
        const SiteCoord c = g.coordOf(id);
        EXPECT_LT(c.row, rows);
        EXPECT_LT(c.col, cols);
        EXPECT_EQ(g.idOf(c), id);
        seen.insert({c.row, c.col});
    }
    EXPECT_EQ(seen.size(), g.siteCount());
}

TEST_P(GeometrySweep, RouteLengthIsAMetric)
{
    const auto [rows, cols] = GetParam();
    MacrochipGeometry g(rows, cols);
    const SiteId n = g.siteCount();
    for (SiteId a = 0; a < n; a += 3) {
        EXPECT_DOUBLE_EQ(g.routeLengthCm(a, a), 0.0);
        for (SiteId b = 0; b < n; b += 5) {
            // Symmetry.
            EXPECT_DOUBLE_EQ(g.routeLengthCm(a, b),
                             g.routeLengthCm(b, a));
            // Bounded by the worst case.
            EXPECT_LE(g.routeLengthCm(a, b), g.worstCaseRouteCm());
        }
    }
}

TEST_P(GeometrySweep, TorusHopsRespectWraparound)
{
    const auto [rows, cols] = GetParam();
    MacrochipGeometry g(rows, cols);
    const SiteId n = g.siteCount();
    for (SiteId a = 0; a < n; a += 3) {
        for (SiteId b = 0; b < n; b += 5) {
            const std::uint32_t h = g.torusHops(a, b);
            EXPECT_EQ(h, g.torusHops(b, a));
            EXPECT_LE(h, rows / 2 + cols / 2);
            if (a == b) {
                EXPECT_EQ(h, 0u);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GeometrySweep,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(1u, 8u),
                      std::make_tuple(2u, 2u), std::make_tuple(4u, 4u),
                      std::make_tuple(8u, 8u),
                      std::make_tuple(3u, 5u),
                      std::make_tuple(16u, 16u)));

// ---------------------------------------------------------------------
// Circuit-switched torus-path validity over every site pair.

TEST(TorusPathProperty, EveryPairRoutesThroughAdjacentHops)
{
    Simulator sim;
    CircuitSwitchedTorus net(sim, simulatedConfig());
    const MacrochipGeometry &g = net.geometry();
    for (SiteId src = 0; src < 64; ++src) {
        for (SiteId dst = 0; dst < 64; ++dst) {
            if (src == dst)
                continue;
            const auto path = net.torusPath(src, dst);
            // Intermediate count matches the torus hop metric.
            EXPECT_EQ(path.size() + 1, g.torusHops(src, dst))
                << src << "->" << dst;
            // Consecutive sites along the walk are torus-adjacent.
            SiteId prev = src;
            for (const SiteId via : path) {
                EXPECT_EQ(g.torusHops(prev, via), 1u)
                    << src << "->" << dst;
                prev = via;
            }
            EXPECT_EQ(g.torusHops(prev, dst), 1u);
        }
    }
}

// ---------------------------------------------------------------------
// Topology independence properties.

TEST(Independence, TwoPhaseRowsDoNotShareNotifications)
{
    // Senders in different rows targeting the same column use
    // different manager wavelengths: equal-latency, no serialization
    // between them.
    Simulator sim;
    TwoPhaseArbitratedNetwork net(sim, simulatedConfig());
    std::map<SiteId, Tick> delivered;
    net.setDefaultHandler([&](const Message &m) {
        delivered[m.src] = m.delivered - m.injected;
    });
    Message a;
    a.src = 0; // row 0
    a.dst = 9; // column 1
    net.inject(a);
    Message b;
    b.src = 16; // row 2
    b.dst = 25; // (3,1): column 1, same 2-hop Manhattan distance
    net.inject(b);
    sim.run();
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0], delivered[16]); // same relative path
}

TEST(Independence, PointToPointAllPairsSimultaneously)
{
    // All 64x63 channels carry one packet at once without
    // interference: per-pair latency depends only on distance.
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    std::map<std::pair<SiteId, SiteId>, Tick> lat;
    net.setDefaultHandler([&](const Message &m) {
        lat[{m.src, m.dst}] = m.delivered - m.injected;
    });
    for (SiteId s = 0; s < 64; ++s) {
        for (SiteId d = 0; d < 64; ++d) {
            if (s == d)
                continue;
            Message m;
            m.src = s;
            m.dst = d;
            net.inject(m);
        }
    }
    sim.run();
    ASSERT_EQ(lat.size(), 64u * 63u);
    const MacrochipGeometry &g = net.geometry();
    for (const auto &[pair, t] : lat) {
        const Tick expect = 200 + 12800
            + g.propagationDelay(pair.first, pair.second) + 200;
        EXPECT_EQ(t, expect);
    }
}

// ---------------------------------------------------------------------
// Trace-CPU stall path.

TEST(TraceCpuStall, BlockingCoresStillFinish)
{
    Simulator sim(5);
    MacrochipConfig cfg = simulatedConfig();
    cfg.mshrsPerCore = 1; // every second miss stalls the core
    PointToPointNetwork net(sim, cfg);
    WorkloadSpec spec;
    spec.name = "stall-test";
    spec.mode = HomeMode::Pattern;
    spec.pattern = TrafficPattern::Uniform;
    spec.mix = SharerMix::moreSharing();
    spec.missRatePerInstr = 0.2; // extreme: stalls guaranteed
    spec.instructionsPerCore = 300;
    const TraceCpuResult res = TraceCpuSystem(sim, net, spec).run();
    EXPECT_EQ(res.instructions, 300u * 512u);
    EXPECT_GT(res.coherenceOps, 20000u);
    // With one MSHR and ~60 misses/core, runtime is dominated by
    // serialized coherence operations.
    EXPECT_GT(res.runtimeNs(),
              50.0 * static_cast<double>(res.coherenceOps) / 512.0);
}

} // namespace
