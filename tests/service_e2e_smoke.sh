#!/bin/sh
# End-to-end smoke test for the macrosimd service (DESIGN.md §13).
#
# Runs the --smoke campaign three ways and byte-compares the result
# tables:
#   1. offline, in-process (the reference);
#   2. through a daemon that is killed (deterministically, via
#      --exit-after-cells=2) mid-campaign and restarted with
#      --resume;
#   3. nothing else — the resumed daemon must finish the job and
#      serve a table identical to (1).
#
# Usage: service_e2e_smoke.sh <macrosimd> <macrosimctl> <workdir>
set -eu

MACROSIMD=$1
MACROSIMCTL=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK/journal"
# Unix socket paths are capped at ~108 bytes; build trees can be
# deep, so put the socket in /tmp keyed by PID.
SOCK="/tmp/macrosim_e2e_$$.sock"

cleanup() {
    [ -n "${DPID:-}" ] && kill "$DPID" 2>/dev/null || true
    rm -f "$SOCK"
}
trap cleanup EXIT INT TERM

wait_for_socket() {
    i=0
    while [ ! -S "$SOCK" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: daemon never created $SOCK" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "== 1. offline reference run"
"$MACROSIMCTL" offline --smoke --jobs=2 --output="$WORK/ref.csv" \
    2>/dev/null

echo "== 2. daemon run, killed after 2 journaled cells"
"$MACROSIMD" --socket="$SOCK" --journal-dir="$WORK/journal" \
    --jobs=2 --exit-after-cells=2 >"$WORK/daemon1.log" 2>&1 &
DPID=$!
wait_for_socket
"$MACROSIMCTL" --socket="$SOCK" submit --smoke >/dev/null 2>&1 || true
# The daemon _exit(42)s after journaling its 2nd cell.
rc=0
wait "$DPID" || rc=$?
DPID=
if [ "$rc" -ne 42 ]; then
    echo "FAIL: first daemon exited $rc, expected 42" >&2
    cat "$WORK/daemon1.log" >&2
    exit 1
fi
if [ ! -s "$WORK/journal/job1.mjr" ]; then
    echo "FAIL: no journal written" >&2
    exit 1
fi

echo "== 3. resumed daemon finishes the job"
# The killed daemon left its socket file behind; remove it so
# wait_for_socket waits for the new daemon's bind (the client also
# retries refused connections, covering the remaining window).
rm -f "$SOCK"
"$MACROSIMD" --socket="$SOCK" --journal-dir="$WORK/journal" \
    --jobs=2 --resume >"$WORK/daemon2.log" 2>&1 &
DPID=$!
wait_for_socket
"$MACROSIMCTL" --socket="$SOCK" results 1 --wait \
    --output="$WORK/resumed.csv" 2>"$WORK/ctl.log"
grep -q "re-queued" "$WORK/daemon2.log" || {
    echo "FAIL: resume did not re-queue the journaled job" >&2
    cat "$WORK/daemon2.log" >&2
    exit 1
}
"$MACROSIMCTL" --socket="$SOCK" shutdown 2>/dev/null
rc=0
wait "$DPID" || rc=$?
DPID=
if [ "$rc" -ne 0 ]; then
    echo "FAIL: resumed daemon exited $rc" >&2
    cat "$WORK/daemon2.log" >&2
    exit 1
fi

echo "== 4. byte-compare resumed table against offline reference"
if ! cmp "$WORK/ref.csv" "$WORK/resumed.csv"; then
    echo "FAIL: resumed table differs from offline reference" >&2
    diff "$WORK/ref.csv" "$WORK/resumed.csv" >&2 || true
    exit 1
fi

echo "PASS: kill/resume table is byte-identical to the offline run"
