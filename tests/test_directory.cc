/**
 * @file
 * Tests for the SiteSet sharer vector and Directory slices.
 */

#include <gtest/gtest.h>

#include "arch/config.hh"
#include "arch/directory.hh"
#include "net/pt2pt.hh"
#include "workloads/coherence.hh"

namespace
{

using namespace macrosim;

TEST(SiteSet, AddRemoveContains)
{
    SiteSet s;
    EXPECT_TRUE(s.empty());
    s.add(0);
    s.add(63);
    s.add(17);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_TRUE(s.contains(0));
    EXPECT_TRUE(s.contains(63));
    EXPECT_FALSE(s.contains(5));
    s.remove(0);
    EXPECT_FALSE(s.contains(0));
    EXPECT_EQ(s.count(), 2u);
}

TEST(SiteSet, AddIsIdempotent)
{
    SiteSet s;
    s.add(5);
    s.add(5);
    EXPECT_EQ(s.count(), 1u);
}

TEST(SiteSet, MembersSortedAscending)
{
    SiteSet s;
    s.add(42);
    s.add(3);
    s.add(17);
    EXPECT_EQ(s.members(), (std::vector<SiteId>{3, 17, 42}));
}

TEST(SiteSet, ClearEmpties)
{
    SiteSet s;
    s.add(1);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.members().empty());
}

TEST(Directory, HomeSiteInterleavesByLine)
{
    Directory d(64);
    // Consecutive lines map to consecutive sites, wrapping.
    EXPECT_EQ(d.homeSite(0, 64), 0u);
    EXPECT_EQ(d.homeSite(64, 64), 1u);
    EXPECT_EQ(d.homeSite(63 * 64, 64), 63u);
    EXPECT_EQ(d.homeSite(64 * 64, 64), 0u);
    // Offsets within a line share the home.
    EXPECT_EQ(d.homeSite(64 + 13, 64), 1u);
}

TEST(Directory, ProbeOnUnknownLineIsUncached)
{
    Directory d(64);
    const DirEntry e = d.probe(0x1000);
    EXPECT_EQ(e.state, DirState::Uncached);
    EXPECT_TRUE(e.sharers.empty());
    EXPECT_EQ(d.trackedLines(), 0u);
}

TEST(Directory, EntryCreatesAndPersists)
{
    Directory d(64);
    DirEntry &e = d.entry(0x1000);
    e.state = DirState::Exclusive;
    e.owner = 12;
    const DirEntry got = d.probe(0x1000);
    EXPECT_EQ(got.state, DirState::Exclusive);
    EXPECT_EQ(got.owner, 12u);
    EXPECT_EQ(d.trackedLines(), 1u);
}

TEST(Directory, ReclaimDropsDeadUncachedEntries)
{
    Directory d(64);
    d.entry(0x1000); // created Uncached with no sharers
    ASSERT_EQ(d.trackedLines(), 1u);
    d.reclaim(0x1000);
    EXPECT_EQ(d.trackedLines(), 0u);
    // Reclaim is invisible to the protocol: probing decodes the
    // absent entry exactly as the dead one.
    EXPECT_EQ(d.probe(0x1000).state, DirState::Uncached);
}

TEST(Directory, ReclaimKeepsLiveEntries)
{
    Directory d(64);
    DirEntry &owned = d.entry(0x1000);
    owned.state = DirState::Exclusive;
    owned.owner = 4;
    DirEntry &shared = d.entry(0x2000);
    shared.state = DirState::Uncached; // but still has a sharer bit
    shared.sharers.add(9);
    d.reclaim(0x1000);
    d.reclaim(0x2000);
    d.reclaim(0x3000); // absent line: no-op
    EXPECT_EQ(d.trackedLines(), 2u);
    EXPECT_EQ(d.probe(0x1000).state, DirState::Exclusive);
}

TEST(Directory, SteadyStateEntryCountIsBoundedByCacheCapacity)
{
    // Regression: evicted-then-written-back lines used to leave dead
    // Uncached entries behind, so the directory grew with every line
    // ever touched. Stream far more distinct lines through one site
    // than its L2 holds; the tracked-line population must stay at
    // the cache's working set, not the total footprint.
    Simulator sim(3);
    PointToPointNetwork net(sim, simulatedConfig());
    CoherenceEngine eng(sim, net, true);

    const std::uint32_t line_bytes = net.config().cacheLineBytes;
    const std::uint32_t l2_lines =
        net.config().l2CacheBytes / line_bytes;
    const std::uint32_t touched = 4 * l2_lines;
    for (std::uint32_t i = 0; i < touched; ++i) {
        eng.startAccess(0, static_cast<Addr>(i) * line_bytes,
                        MemOp::Write, nullptr);
    }
    sim.run();
    ASSERT_EQ(eng.inFlight(), 0u);
    EXPECT_GT(eng.writebacks(), 0u);

    std::size_t tracked = 0;
    for (SiteId s = 0; s < net.config().siteCount(); ++s)
        tracked += eng.directorySlice(s).trackedLines();
    // Everything still cached is tracked; written-back lines must
    // not be. Allow slack for lines evicted clean (still Exclusive
    // in the directory until their writeback would occur) — the
    // bound that matters is "does not scale with `touched`".
    EXPECT_LE(tracked, static_cast<std::size_t>(l2_lines) * 2);
    EXPECT_LT(tracked, touched / 2);
}

TEST(Config, Table4Values)
{
    const MacrochipConfig c = simulatedConfig();
    EXPECT_EQ(c.siteCount(), 64u);
    EXPECT_EQ(c.coreCount(), 512u);
    EXPECT_EQ(c.l2CacheBytes, 256u * 1024u);
    EXPECT_EQ(c.coresPerSite, 8u);
    EXPECT_EQ(c.threadsPerCore, 1u);
    EXPECT_DOUBLE_EQ(c.siteBandwidthBytesPerNs(), 320.0);
    EXPECT_DOUBLE_EQ(c.peakBandwidthTBs(), 20.48);
    EXPECT_EQ(c.wavelengthsPerWaveguide, 8u);
    EXPECT_DOUBLE_EQ(c.clock().frequencyGhz(), 5.0);
}

TEST(Config, FullScaleSection3Values)
{
    const MacrochipConfig c = fullScaleConfig();
    EXPECT_EQ(c.coreCount(), 4096u);
    EXPECT_DOUBLE_EQ(c.siteBandwidthBytesPerNs(), 2560.0);
    // 160 TB/s aggregate peak.
    EXPECT_NEAR(c.peakBandwidthTBs(), 163.84, 1e-9);
    EXPECT_EQ(c.wavelengthsPerWaveguide, 16u);
}

} // namespace
