/**
 * @file
 * Tests for the open-loop packet injector and the figure 6 saturation
 * ordering across networks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "net/circuit_switched.hh"
#include "net/pt2pt.hh"
#include "net/token_ring.hh"
#include "sim/logging.hh"
#include "workloads/packet_injector.hh"

namespace
{

using namespace macrosim;

InjectorConfig
quickConfig(TrafficPattern pattern, double load)
{
    InjectorConfig cfg;
    cfg.pattern = pattern;
    cfg.load = load;
    cfg.warmup = 500 * tickNs;
    cfg.window = 3000 * tickNs;
    cfg.seed = 77;
    return cfg;
}

TEST(Injector, LowLoadLatencyIsNearZeroLoad)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    const auto res = runOpenLoop(
        sim, net, quickConfig(TrafficPattern::Uniform, 0.05));
    EXPECT_GT(res.measuredPackets, 1000u);
    // Zero-load latency is ~13-17 ns depending on distance; a 5%
    // load adds little queueing on 64 independent channels.
    EXPECT_GT(res.meanLatencyNs, 13.0);
    EXPECT_LT(res.meanLatencyNs, 30.0);
    // Percentiles bracket the mean and the tail stays modest.
    EXPECT_LE(res.p50LatencyNs, res.meanLatencyNs + 1.0);
    EXPECT_GE(res.p99LatencyNs, res.p50LatencyNs);
    EXPECT_LT(res.p99LatencyNs, 120.0);
}

TEST(Injector, DeliveredMatchesOfferedBelowSaturation)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    const auto res = runOpenLoop(
        sim, net, quickConfig(TrafficPattern::Uniform, 0.30));
    EXPECT_NEAR(res.deliveredPct, 30.0, 3.0);
}

TEST(Injector, LatencyDivergesBeyondSaturation)
{
    Simulator sim_low;
    PointToPointNetwork low(sim_low, simulatedConfig());
    const auto low_res = runOpenLoop(
        sim_low, low, quickConfig(TrafficPattern::Transpose, 0.01));

    // Transpose uses a single 5 GB/s channel per site: 1.56% of the
    // 320 B/ns per-site peak. 3% offered is overload.
    Simulator sim_hi;
    PointToPointNetwork hi(sim_hi, simulatedConfig());
    const auto hi_res = runOpenLoop(
        sim_hi, hi, quickConfig(TrafficPattern::Transpose, 0.03));

    EXPECT_GT(hi_res.meanLatencyNs, 4.0 * low_res.meanLatencyNs);
    // Delivered throughput clips near the 1.56% channel limit.
    EXPECT_LT(hi_res.deliveredPct, 2.2);
    EXPECT_GT(hi_res.deliveredPct, 1.2);
}

TEST(Injector, TokenRingUniformOutperformsItsOneToOneMode)
{
    // Section 6.1: one-to-one patterns collapse the token ring below
    // 1% of peak while uniform sustains far more.
    Simulator sim_t;
    TokenRingCrossbar ring_t(sim_t, simulatedConfig());
    const auto transpose = runOpenLoop(
        sim_t, ring_t, quickConfig(TrafficPattern::Transpose, 0.02));

    Simulator sim_u;
    TokenRingCrossbar ring_u(sim_u, simulatedConfig());
    const auto uniform = runOpenLoop(
        sim_u, ring_u, quickConfig(TrafficPattern::Uniform, 0.20));

    // Uniform at 20% load is fine; transpose at 2% is saturated.
    EXPECT_LT(uniform.meanLatencyNs, transpose.meanLatencyNs);
    EXPECT_LT(transpose.deliveredPct, 1.4);
}

TEST(Injector, WarmClockMatchesColdStart)
{
    // The measurement window is anchored at the injector's start, not
    // at absolute tick `warmup`. A caller that ran the simulator
    // before invoking the injector must get the same (time-translated)
    // measurement as a cold start; the old absolute-tick window
    // marking counted warmup packets as measured on a warm clock.
    const InjectorConfig cfg = quickConfig(TrafficPattern::Uniform, 0.20);

    Simulator cold_sim;
    PointToPointNetwork cold_net(cold_sim, simulatedConfig());
    const auto cold = runOpenLoop(cold_sim, cold_net, cfg);

    Simulator warm_sim;
    PointToPointNetwork warm_net(warm_sim, simulatedConfig());
    warm_sim.events().schedule(1500 * tickNs, [] {});
    warm_sim.run();
    ASSERT_EQ(warm_sim.now(), 1500 * tickNs);
    const auto warm = runOpenLoop(warm_sim, warm_net, cfg);

    // Everything the injector touches is translation-invariant, so
    // the results agree bit for bit.
    EXPECT_EQ(cold.meanLatencyNs, warm.meanLatencyNs);
    EXPECT_EQ(cold.maxLatencyNs, warm.maxLatencyNs);
    EXPECT_EQ(cold.p50LatencyNs, warm.p50LatencyNs);
    EXPECT_EQ(cold.p99LatencyNs, warm.p99LatencyNs);
    EXPECT_EQ(cold.measuredPackets, warm.measuredPackets);
    EXPECT_EQ(cold.overflowPackets, warm.overflowPackets);
    EXPECT_EQ(cold.deliveredPct, warm.deliveredPct);
    EXPECT_EQ(cold.offeredMeasuredPct, warm.offeredMeasuredPct);
}

TEST(Injector, MeasuredOfferedLoadTracksRequestedLoad)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    const auto res = runOpenLoop(
        sim, net, quickConfig(TrafficPattern::Uniform, 0.30));
    // The per-gap >=1 tick rounding biases the realized rate up by
    // well under 2% at figure-6 rates; offeredMeasuredPct reports the
    // realized figure so the bias is visible instead of silent.
    EXPECT_NEAR(res.offeredMeasuredPct, 30.0, 0.5);
    EXPECT_GE(res.offeredMeasuredPct, 29.5);
}

TEST(Injector, OverflowLatenciesReportInfPercentilesNotClips)
{
    // 2x2 grid: 8 Tx/site (20 B/ns), one 5 B/ns channel per
    // destination. 150% offered load over a 14 us window queues far
    // past the histogram's 4 us cap, so the tail percentile lands in
    // the overflow bucket and must say so (+inf), not silently clip
    // to 4 us. The mean/max come from the unclipped accumulator.
    Simulator sim;
    PointToPointNetwork net(sim, scaledConfig(2, 2));
    InjectorConfig cfg;
    cfg.pattern = TrafficPattern::Uniform;
    cfg.load = 1.5;
    cfg.warmup = 0;
    cfg.window = 14000 * tickNs;
    cfg.seed = 3;
    const auto res = runOpenLoop(sim, net, cfg);
    EXPECT_GT(res.overflowPackets, 0u);
    EXPECT_LT(res.overflowPackets, res.measuredPackets);
    EXPECT_TRUE(std::isinf(res.p99LatencyNs));
    EXPECT_TRUE(std::isfinite(res.p50LatencyNs));
    EXPECT_GT(res.maxLatencyNs, 4000.0);
    EXPECT_GT(res.meanLatencyNs, res.p50LatencyNs);
}

TEST(Injector, RejectsNonsenseLoad)
{
    Simulator sim;
    PointToPointNetwork net(sim, simulatedConfig());
    EXPECT_THROW(
        runOpenLoop(sim, net,
                    quickConfig(TrafficPattern::Uniform, 0.0)),
        FatalError);
}

} // namespace
