/**
 * @file
 * Wire-format tests for the macrosimd protocol (DESIGN.md §13):
 * primitive round-trips (varint boundaries, bit-exact doubles
 * including NaN), incremental frame splitting under adversarial
 * chunking, corrupted/truncated-frame rejection, version-skew rules,
 * and a randomized differential round-trip over every protocol
 * message.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/campaign.hh"
#include "service/protocol.hh"
#include "service/wire.hh"

using namespace macrosim;
using namespace macrosim::service;

namespace
{

TEST(Wire, VarintBoundaries)
{
    // Every value whose encoding length changes, plus the extremes.
    const std::uint64_t cases[] = {
        0,
        1,
        127,
        128,
        16383,
        16384,
        (1ull << 35) - 1,
        1ull << 35,
        std::numeric_limits<std::uint64_t>::max() - 1,
        std::numeric_limits<std::uint64_t>::max(),
    };
    for (const std::uint64_t v : cases) {
        BinSerializer s;
        s.varint(v);
        const std::vector<std::uint8_t> bytes_ = s.buffer();
        BinDeserializer d(bytes_);
        EXPECT_EQ(d.varint(), v);
        EXPECT_TRUE(d.exact()) << v;
    }

    // One-byte values encode in one byte; the max takes the 10-byte
    // cap exactly.
    BinSerializer small, big;
    small.varint(127);
    big.varint(std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(small.size(), 1u);
    EXPECT_EQ(big.size(), 10u);
}

TEST(Wire, VarintOverlongRejected)
{
    // Eleven continuation bytes: over the 10-byte cap.
    std::vector<std::uint8_t> bytes(11, 0x80);
    bytes.push_back(0x01);
    BinDeserializer d(bytes.data(), bytes.size());
    d.varint();
    EXPECT_FALSE(d.ok());
}

TEST(Wire, FixedWidthLittleEndian)
{
    BinSerializer s;
    s.u16(0x1122);
    s.u32(0xAABBCCDDu);
    s.u64(0x1020304050607080ull);
    const auto &b = s.buffer();
    ASSERT_EQ(b.size(), 14u);
    // Low byte first, independent of host order.
    EXPECT_EQ(b[0], 0x22);
    EXPECT_EQ(b[1], 0x11);
    EXPECT_EQ(b[2], 0xDD);
    EXPECT_EQ(b[5], 0xAA);
    EXPECT_EQ(b[6], 0x80);
    EXPECT_EQ(b[13], 0x10);

    BinDeserializer d(b);
    EXPECT_EQ(d.u16(), 0x1122);
    EXPECT_EQ(d.u32(), 0xAABBCCDDu);
    EXPECT_EQ(d.u64(), 0x1020304050607080ull);
    EXPECT_TRUE(d.exact());
}

TEST(Wire, DoubleBitExact)
{
    const double cases[] = {
        0.0,
        -0.0,
        1.0,
        -1.5,
        16.246946258161728, // a real table value
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
    };
    for (const double v : cases) {
        BinSerializer s;
        s.f64(v);
        const std::vector<std::uint8_t> bytes_ = s.buffer();
        BinDeserializer d(bytes_);
        const double back = d.f64();
        EXPECT_TRUE(d.exact());
        // Compare bit patterns, not values: NaN != NaN and
        // -0.0 == 0.0 would both fool a value comparison.
        std::uint64_t a = 0, b = 0;
        std::memcpy(&a, &v, sizeof a);
        std::memcpy(&b, &back, sizeof b);
        EXPECT_EQ(a, b);
    }
}

TEST(Wire, StringLengthOverRemainingRejected)
{
    BinSerializer s;
    s.varint(1000); // claims 1000 bytes follow
    s.u8('x');      // only one does
    const std::vector<std::uint8_t> bytes_ = s.buffer();
    BinDeserializer d(bytes_);
    const std::string out = d.str();
    EXPECT_FALSE(d.ok());
    EXPECT_TRUE(out.empty());
}

TEST(Wire, ReadPastEndLatches)
{
    BinSerializer s;
    s.u16(7);
    const std::vector<std::uint8_t> bytes_ = s.buffer();
    BinDeserializer d(bytes_);
    EXPECT_EQ(d.u16(), 7);
    EXPECT_EQ(d.u32(), 0u); // past the end: zero, not garbage
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.u8(), 0); // stays latched
    EXPECT_FALSE(d.exact());
}

TEST(Wire, FrameRoundTripByteAtATime)
{
    BinSerializer body;
    body.u64(42);
    body.str("hello frame");
    const std::vector<std::uint8_t> wire = encodeFrame(9, body);

    // Feed one byte at a time: the reader must produce exactly one
    // frame, and only once the last byte arrives.
    FrameReader reader;
    Frame frame;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        reader.feed(&wire[i], 1);
        EXPECT_EQ(reader.next(&frame), FrameReader::Status::NeedMore);
    }
    reader.feed(&wire.back(), 1);
    ASSERT_EQ(reader.next(&frame), FrameReader::Status::Ready);
    EXPECT_EQ(frame.id, 9);
    EXPECT_EQ(frame.version, protoVersion);

    BinDeserializer d(frame.body);
    EXPECT_EQ(d.u64(), 42u);
    EXPECT_EQ(d.str(), "hello frame");
    EXPECT_TRUE(d.exact());
    EXPECT_EQ(reader.next(&frame), FrameReader::Status::NeedMore);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Wire, BackToBackFramesSplitAcrossChunks)
{
    std::vector<std::uint8_t> stream;
    for (int i = 0; i < 5; ++i) {
        BinSerializer body;
        body.u32(static_cast<std::uint32_t>(i));
        const auto f = encodeFrame(static_cast<std::uint16_t>(i), body);
        stream.insert(stream.end(), f.begin(), f.end());
    }

    // Deterministically ragged chunk sizes.
    std::mt19937_64 rng(123);
    FrameReader reader;
    std::size_t off = 0;
    int got = 0;
    while (off < stream.size()) {
        const std::size_t n =
            std::min<std::size_t>(1 + rng() % 7, stream.size() - off);
        reader.feed(&stream[off], n);
        off += n;
        Frame frame;
        while (reader.next(&frame) == FrameReader::Status::Ready) {
            BinDeserializer d(frame.body);
            EXPECT_EQ(frame.id, got);
            EXPECT_EQ(d.u32(), static_cast<std::uint32_t>(got));
            ++got;
        }
    }
    EXPECT_EQ(got, 5);
}

TEST(Wire, OversizedPayloadIsBad)
{
    BinSerializer raw;
    raw.u32(maxFramePayload + 1);
    raw.u16(protoVersion);
    raw.u16(1);
    FrameReader reader;
    reader.feed(raw.data(), raw.size());
    Frame frame;
    std::string error;
    EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::Bad);
    EXPECT_FALSE(error.empty());
}

TEST(Wire, RuntPayloadLengthIsBad)
{
    // A frame length must cover version + id (4 bytes).
    BinSerializer raw;
    raw.u32(3);
    raw.u16(protoVersion);
    raw.u16(1);
    FrameReader reader;
    reader.feed(raw.data(), raw.size());
    Frame frame;
    EXPECT_EQ(reader.next(&frame), FrameReader::Status::Bad);
}

TEST(Wire, MajorVersionMismatchIsBad)
{
    BinSerializer body;
    body.u64(1);
    std::vector<std::uint8_t> wire = encodeFrame(1, body);
    // Patch the version's major byte (little-endian u16 at offset 4:
    // minor first, major second).
    wire[5] = protoMajor + 1;
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    Frame frame;
    std::string error;
    EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::Bad);
    EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(Wire, NewerMinorTrailingFieldsIgnored)
{
    // A (major, minor+1) writer appends a field this reader does not
    // know. decodeMessage must accept the frame and ignore the tail.
    QueryStatusMsg msg;
    msg.jobId = 77;
    BinSerializer body;
    msg.encode(body);
    body.u32(0xDEADBEEF); // the "new" field

    Frame frame;
    frame.version =
        (static_cast<std::uint16_t>(protoMajor) << 8) | (protoMinor + 1);
    frame.id = static_cast<std::uint16_t>(MsgId::QueryStatus);
    frame.body = body.take();

    QueryStatusMsg out;
    EXPECT_TRUE(decodeMessage(frame, &out));
    EXPECT_EQ(out.jobId, 77u);
}

TEST(Wire, SameMinorTrailingBytesRejected)
{
    // Same-version frames are exact: trailing bytes mean corruption.
    QueryStatusMsg msg;
    msg.jobId = 77;
    BinSerializer body;
    msg.encode(body);
    body.u8(0);

    Frame frame;
    frame.id = static_cast<std::uint16_t>(MsgId::QueryStatus);
    frame.body = body.take();

    QueryStatusMsg out;
    EXPECT_FALSE(decodeMessage(frame, &out));
}

TEST(Wire, WrongMessageIdRejected)
{
    CancelJobMsg msg;
    msg.jobId = 3;
    const auto wire = encodeMessage(msg);
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    Frame frame;
    ASSERT_EQ(reader.next(&frame), FrameReader::Status::Ready);
    QueryStatusMsg wrong;
    EXPECT_FALSE(decodeMessage(frame, &wrong));
}

/** Random spec with every field exercised. */
CampaignSpec
randomSpec(std::mt19937_64 &rng)
{
    CampaignSpec spec;
    spec.kind = (rng() & 1) ? CampaignKind::InjectorSweep
                            : CampaignKind::WorkloadMatrix;
    spec.seed = rng();
    spec.emitCellStats = (rng() & 1) != 0;
    const char *patterns[] = {"uniform", "hotspot", "transpose"};
    for (std::size_t i = 0; i < 1 + rng() % 3; ++i)
        spec.patterns.push_back(patterns[rng() % 3]);
    const NetSel allNets[] = {
        NetSel::TokenRing,    NetSel::CircuitSwitched,
        NetSel::PointToPoint, NetSel::LimitedPtToPt,
        NetSel::TwoPhase,     NetSel::TwoPhaseAlt,
        NetSel::Hermes};
    for (std::size_t i = 0; i < 1 + rng() % 3; ++i)
        spec.networks.push_back(allNets[rng() % 7]);
    for (std::size_t i = 0; i < 1 + rng() % 4; ++i)
        spec.loads.push_back(
            static_cast<double>(rng() % 1000) / 1000.0 + 1e-3);
    spec.warmupNs = rng() % 10000;
    spec.windowNs = 1 + rng() % 10000;
    spec.instructionsPerCore = 1 + rng() % 100000;
    const char *workloads[] = {"fft", "lu", "radix"};
    for (std::size_t i = 0; i < 1 + rng() % 3; ++i)
        spec.workloads.push_back(workloads[rng() % 3]);
    return spec;
}

bool
specEqual(const CampaignSpec &a, const CampaignSpec &b)
{
    // fingerprint() hashes every field that matters for identity;
    // re-encoding both is the byte-level check.
    BinSerializer sa, sb;
    a.encode(sa);
    b.encode(sb);
    return sa.buffer() == sb.buffer()
        && a.fingerprint() == b.fingerprint();
}

TEST(Wire, RandomizedSpecRoundTrip)
{
    std::mt19937_64 rng(20260807);
    for (int iter = 0; iter < 200; ++iter) {
        const CampaignSpec spec = randomSpec(rng);
        BinSerializer s;
        spec.encode(s);
        BinDeserializer d(s.buffer());
        CampaignSpec back;
        ASSERT_TRUE(back.decode(d));
        EXPECT_TRUE(d.exact());
        EXPECT_TRUE(specEqual(spec, back)) << "iter " << iter;
    }
}

CellOutcome
randomCell(std::mt19937_64 &rng)
{
    CellOutcome cell;
    cell.index = static_cast<std::uint32_t>(rng() % 1000);
    cell.label = "cell-" + std::to_string(rng() % 97);
    cell.kind = static_cast<std::uint8_t>(rng() & 1);
    cell.skipped = (rng() % 8) == 0;
    auto rnd = [&rng] {
        // Raw bit patterns, including NaNs/denormals.
        std::uint64_t bits = rng();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    };
    cell.injector.offeredLoadPct = rnd();
    cell.injector.meanLatencyNs = rnd();
    cell.injector.maxLatencyNs = rnd();
    cell.injector.p50LatencyNs = rnd();
    cell.injector.p99LatencyNs = rnd();
    cell.injector.deliveredBytesPerNsPerSite = rnd();
    cell.injector.deliveredPct = rnd();
    cell.injector.measuredPackets = rng();
    cell.injector.overflowPackets = rng();
    cell.injector.offeredMeasuredPct = rnd();
    cell.trace.workload = "wl-" + std::to_string(rng() % 7);
    cell.trace.network = "net-" + std::to_string(rng() % 5);
    cell.trace.runtime = rng();
    cell.trace.instructions = rng();
    cell.trace.coherenceOps = rng();
    cell.trace.opLatencyNs = rnd();
    cell.trace.totalJoules = rnd();
    cell.trace.routerJoules = rnd();
    cell.trace.cpuJoules = rnd();
    cell.trace.edp = rnd();
    for (std::size_t i = 0; i < rng() % 4; ++i)
        cell.stats.push_back({"stat." + std::to_string(i), rnd()});
    return cell;
}

TEST(Wire, RandomizedCellOutcomeRoundTrip)
{
    std::mt19937_64 rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        const CellOutcome cell = randomCell(rng);
        BinSerializer s;
        cell.encode(s);
        BinDeserializer d(s.buffer());
        CellOutcome back;
        ASSERT_TRUE(back.decode(d));
        EXPECT_TRUE(d.exact());
        BinSerializer s2;
        back.encode(s2);
        // Byte-identical re-encode == bit-exact doubles round-trip.
        EXPECT_EQ(s.buffer(), s2.buffer()) << "iter " << iter;
    }
}

/** Encode → frame → FrameReader → decode; expect byte-equal
 *  re-encode. Works for any protocol message type. */
template <typename Msg>
void
expectMessageRoundTrip(const Msg &msg)
{
    const std::vector<std::uint8_t> wire = encodeMessage(msg);
    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    Frame frame;
    ASSERT_EQ(reader.next(&frame), FrameReader::Status::Ready);
    EXPECT_EQ(frame.id, static_cast<std::uint16_t>(Msg::id));
    Msg back;
    ASSERT_TRUE(decodeMessage(frame, &back));
    EXPECT_EQ(encodeMessage(back), wire);
}

TEST(Wire, EveryProtocolMessageRoundTrips)
{
    std::mt19937_64 rng(99);

    SubmitCampaignMsg submit;
    submit.spec = randomSpec(rng);
    expectMessageRoundTrip(submit);

    QueryStatusMsg query;
    query.jobId = rng();
    expectMessageRoundTrip(query);

    CancelJobMsg cancel;
    cancel.jobId = rng();
    expectMessageRoundTrip(cancel);

    SubscribeProgressMsg subscribe;
    subscribe.jobId = rng();
    expectMessageRoundTrip(subscribe);

    FetchResultsMsg fetch;
    fetch.jobId = rng();
    expectMessageRoundTrip(fetch);

    expectMessageRoundTrip(ShutdownMsg{});

    SubmitReplyMsg submitReply;
    submitReply.jobId = rng();
    submitReply.totalCells = rng();
    expectMessageRoundTrip(submitReply);

    StatusReplyMsg status;
    status.jobId = rng();
    status.state = JobState::Running;
    status.doneCells = 3;
    status.totalCells = 9;
    status.etaSec = 12.75;
    status.error = "";
    expectMessageRoundTrip(status);

    CancelReplyMsg cancelReply;
    cancelReply.jobId = rng();
    cancelReply.accepted = true;
    expectMessageRoundTrip(cancelReply);

    SubscribeReplyMsg subReply;
    subReply.jobId = rng();
    subReply.state = JobState::Queued;
    subReply.doneCells = 0;
    subReply.totalCells = 42;
    expectMessageRoundTrip(subReply);

    ResultsReplyMsg results;
    results.jobId = rng();
    results.state = JobState::Done;
    results.table = "index,label\n0,alpha\n";
    results.cells.push_back(randomCell(rng));
    results.cells.push_back(randomCell(rng));
    expectMessageRoundTrip(results);

    expectMessageRoundTrip(ShutdownReplyMsg{});

    ErrorReplyMsg error;
    error.code = static_cast<std::uint32_t>(ErrorCode::UnknownJob);
    error.text = "no such job";
    expectMessageRoundTrip(error);

    ProgressEventMsg progress;
    progress.jobId = rng();
    progress.cellIndex = 4;
    progress.label = "uniform @ 1% on Token Ring";
    progress.doneCells = 5;
    progress.totalCells = 6;
    progress.etaSec = 0.25;
    expectMessageRoundTrip(progress);

    CellDoneEventMsg cellDone;
    cellDone.jobId = rng();
    cellDone.cell = randomCell(rng);
    expectMessageRoundTrip(cellDone);

    CampaignDoneEventMsg campaignDone;
    campaignDone.jobId = rng();
    campaignDone.state = JobState::Failed;
    campaignDone.error = "boom";
    expectMessageRoundTrip(campaignDone);
}

TEST(Wire, CorruptedBodyBitsRejectedOrDetected)
{
    // Flipping any single bit of a SubmitCampaign body must never
    // crash, and must either fail decode or change the re-encode
    // (i.e. corruption can't silently alias the original).
    std::mt19937_64 rng(5);
    SubmitCampaignMsg msg;
    msg.spec = randomSpec(rng);
    const std::vector<std::uint8_t> wire = encodeMessage(msg);

    FrameReader pristine;
    pristine.feed(wire.data(), wire.size());
    Frame frame;
    ASSERT_EQ(pristine.next(&frame), FrameReader::Status::Ready);

    for (int iter = 0; iter < 200; ++iter) {
        Frame mutated = frame;
        if (mutated.body.empty())
            break;
        const std::size_t byte = rng() % mutated.body.size();
        mutated.body[byte] ^=
            static_cast<std::uint8_t>(1u << (rng() % 8));
        SubmitCampaignMsg out;
        if (!decodeMessage(mutated, &out))
            continue; // rejected: fine
        EXPECT_NE(encodeMessage(out), wire);
    }
}

} // namespace
