/**
 * @file
 * Event-core stress test: randomized interleavings of
 * schedule/cancel/runOne/runUntil are applied to the real EventQueue
 * and to a naive reference model (a sorted std::multimap, which
 * preserves insertion order for equal keys), asserting identical
 * execution order, now() trajectory, and size() at every step. Runs
 * under MACROSIM_SANITIZE=address cleanly — the arena recycling and
 * tombstone compaction paths get hammered hard here.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/event.hh"
#include "sim/random.hh"

namespace
{

using namespace macrosim;

/**
 * The semantics of EventQueue, written as artlessly as possible:
 * a time-sorted multimap of tags (multimap guarantees insertion
 * order for equivalent keys, i.e. same-tick FIFO) plus a live set.
 */
class ReferenceQueue
{
  public:
    std::uint64_t
    schedule(Tick when, int tag)
    {
        EXPECT_GE(when, now_);
        queue_.emplace(when, tag);
        live_.insert(tag);
        return static_cast<std::uint64_t>(tag);
    }

    bool
    cancel(int tag)
    {
        return live_.erase(tag) == 1;
    }

    bool
    runOne(std::vector<int> &order)
    {
        while (!queue_.empty()) {
            const auto it = queue_.begin();
            const auto [when, tag] = *it;
            queue_.erase(it);
            if (live_.erase(tag) == 0)
                continue; // cancelled
            now_ = when;
            order.push_back(tag);
            return true;
        }
        return false;
    }

    std::uint64_t
    runUntil(Tick limit, std::vector<int> &order)
    {
        std::uint64_t ran = 0;
        for (;;) {
            // Skip dead entries first so a cancelled early entry
            // cannot admit a live one beyond the limit.
            while (!queue_.empty() &&
                   live_.count(queue_.begin()->second) == 0) {
                queue_.erase(queue_.begin());
            }
            if (queue_.empty() || queue_.begin()->first > limit)
                break;
            runOne(order);
            ++ran;
        }
        return ran;
    }

    Tick now() const { return now_; }
    std::size_t size() const { return live_.size(); }

  private:
    Tick now_ = 0;
    std::multimap<Tick, int> queue_;
    std::unordered_set<int> live_;
};

/** One full random interleaving with a given op mix. */
void
stressRun(std::uint64_t seed, int ops, std::uint32_t cancelWeight)
{
    Rng rng(seed);
    EventQueue real;
    ReferenceQueue ref;

    std::vector<int> real_order, ref_order;
    // tag -> real queue handle, for cancels of live events.
    std::unordered_map<int, EventId> handles;
    std::vector<int> live_tags;
    int next_tag = 0;

    const auto scheduleOne = [&] {
        // Mix of horizons; weight same-tick bursts heavily so FIFO
        // ordering inside a tick is exercised.
        const std::uint64_t kind = rng.below(4);
        Tick when = real.now();
        if (kind == 1)
            when += 1 + rng.below(16);
        else if (kind >= 2)
            when += rng.below(2000);
        const int tag = next_tag++;
        handles[tag] =
            real.schedule(when, [tag, &real_order] {
                real_order.push_back(tag);
            });
        ref.schedule(when, tag);
        live_tags.push_back(tag);
    };

    for (int i = 0; i < ops; ++i) {
        const std::uint64_t roll = rng.below(100);
        if (roll < 45) {
            scheduleOne();
        } else if (roll < 45 + cancelWeight && !live_tags.empty()) {
            // Cancel a random live event — and sometimes a stale
            // handle, which both sides must reject.
            const std::size_t k = rng.below(live_tags.size());
            const int tag = live_tags[k];
            const bool stale = rng.below(8) == 0;
            const int victim = stale ? tag + 100000 : tag;
            const EventId h = stale
                                  ? handles[tag] + (1ull << 33)
                                  : handles[tag];
            ASSERT_EQ(real.cancel(h), ref.cancel(victim));
            if (!stale) {
                live_tags[k] = live_tags.back();
                live_tags.pop_back();
            }
        } else if (roll < 90) {
            ASSERT_EQ(real.runOne(), ref.runOne(ref_order));
        } else {
            const Tick limit = real.now() + rng.below(500);
            ASSERT_EQ(real.runUntil(limit),
                      ref.runUntil(limit, ref_order));
        }
        ASSERT_EQ(real.now(), ref.now()) << "op " << i;
        ASSERT_EQ(real.size(), ref.size()) << "op " << i;
        ASSERT_EQ(real_order, ref_order) << "op " << i;
        // Executed tags are no longer live on either side.
        while (!real_order.empty()) {
            const int done = real_order.back();
            for (std::size_t k = 0; k < live_tags.size(); ++k) {
                if (live_tags[k] == done) {
                    live_tags[k] = live_tags.back();
                    live_tags.pop_back();
                    break;
                }
            }
            handles.erase(done);
            real_order.pop_back();
            ref_order.pop_back();
        }
    }

    // Drain both completely and compare the tail.
    real.runUntil();
    ref.runUntil(maxTick, ref_order);
    ASSERT_EQ(real_order, ref_order);
    ASSERT_EQ(real.now(), ref.now());
    ASSERT_EQ(real.size(), 0u);
    ASSERT_EQ(ref.size(), 0u);
}

TEST(EventQueueStress, MatchesReferenceModelLightCancel)
{
    for (std::uint64_t seed : {11ull, 12ull, 13ull})
        stressRun(seed, 6000, 10);
}

TEST(EventQueueStress, MatchesReferenceModelHeavyCancel)
{
    // Heavy cancellation drives tombstones past the compaction
    // threshold repeatedly.
    for (std::uint64_t seed : {21ull, 22ull, 23ull})
        stressRun(seed, 6000, 35);
}

TEST(EventQueueStress, FollowUpSchedulingMatchesReference)
{
    // Executed events trigger deterministic follow-ups (including
    // same-tick ones) applied to both models in lockstep, so the
    // queues churn through thousands of slot recyclings.
    EventQueue real;
    ReferenceQueue ref;
    std::vector<int> real_order, ref_order;
    int next_tag = 0;

    const auto scheduleBoth = [&](Tick when, int tag) {
        real.schedule(when,
                      [tag, &real_order] { real_order.push_back(tag); });
        ref.schedule(when, tag);
    };

    for (int i = 0; i < 64; ++i)
        scheduleBoth(static_cast<Tick>((i * 13) % 41), next_tag++);

    int executed_total = 0;
    for (;;) {
        const bool a = real.runOne();
        ASSERT_EQ(a, ref.runOne(ref_order));
        if (!a)
            break;
        ASSERT_EQ(real_order, ref_order);
        ASSERT_EQ(real.now(), ref.now());
        const int tag = real_order.back();
        if (++executed_total < 4000 && tag % 3 != 0) {
            scheduleBoth(real.now() + 1
                             + static_cast<Tick>((tag * 7) % 23),
                         next_tag++);
            if (tag % 5 == 0)
                scheduleBoth(real.now(), next_tag++);
        }
    }
    ASSERT_EQ(real_order, ref_order);
    ASSERT_EQ(real.size(), 0u);
}

} // namespace
