/**
 * @file
 * Tests for the HERMES-style hierarchical broadcast network: cluster
 * decomposition invariants, intra-ring broadcast mechanics,
 * inter-cluster bridging arithmetic, the single-cluster degenerate
 * case, and the fault hooks.
 *
 * Latency constants at the 8x8 / 4x4-tile defaults (64 B packets):
 * ring width 2 x 8 x 16 = 256 lambdas -> 640 B/ns -> 100-tick
 * serialization; bridge width 2 x 8 = 16 lambdas -> 40 B/ns ->
 * 1600-tick serialization; ring hop 250 ticks (2.5 cm); interface
 * and gateway router latencies one 200-tick cycle each.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/hermes.hh"

namespace
{

using namespace macrosim;

TEST(HermesDecomposition, ClustersPartitionTheGrid)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    ASSERT_EQ(net.clusterCount(), 4u); // 8x8 grid, 4x4 tiles

    std::vector<int> covered(64, 0);
    for (std::uint32_t cl = 0; cl < net.clusterCount(); ++cl) {
        EXPECT_EQ(net.clusterSize(cl), 16u);
        for (std::size_t i = 0; i < net.clusterMembers(cl).size();
             ++i) {
            const SiteId s = net.clusterMembers(cl)[i];
            ++covered[s];
            EXPECT_EQ(net.clusterOf(s), cl);
            EXPECT_EQ(net.ringPosition(s),
                      static_cast<std::uint32_t>(i));
        }
        // The gateway is a member of its own cluster, at ring
        // position 0 where the serpentine starts.
        EXPECT_EQ(net.gatewayOf(cl), net.clusterMembers(cl).front());
        EXPECT_EQ(net.ringPosition(net.gatewayOf(cl)), 0u);
    }
    // Partition: every site in exactly one cluster, no orphans.
    for (SiteId s = 0; s < 64; ++s)
        EXPECT_EQ(covered[s], 1) << "site " << s;
}

TEST(HermesDecomposition, RingOrderIsSerpentine)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    // Cluster 0 tiles rows 0-3 x cols 0-3; odd tile rows run right
    // to left so consecutive ring positions are physically adjacent.
    const std::vector<SiteId> expected = {
        0, 1, 2, 3, 11, 10, 9, 8, 16, 17, 18, 19, 27, 26, 25, 24,
    };
    EXPECT_EQ(net.clusterMembers(0), expected);
}

TEST(HermesDecomposition, RaggedTilingKeepsEdgeClusters)
{
    // A 6x6 grid with the default 4x4 tile leaves ragged edges; the
    // ceil-tiling keeps them as smaller clusters instead of orphaning
    // sites.
    Simulator sim;
    HermesNetwork net(sim, scaledConfig(6, 6));
    ASSERT_EQ(net.clusterCount(), 4u);
    EXPECT_EQ(net.clusterSize(0), 16u); // 4x4
    EXPECT_EQ(net.clusterSize(1), 8u);  // 4x2
    EXPECT_EQ(net.clusterSize(2), 8u);  // 2x4
    EXPECT_EQ(net.clusterSize(3), 4u);  // 2x2
    std::uint32_t total = 0;
    for (std::uint32_t cl = 0; cl < net.clusterCount(); ++cl) {
        EXPECT_GT(net.clusterSize(cl), 0u);
        total += net.clusterSize(cl);
    }
    EXPECT_EQ(total, 36u);
}

TEST(HermesDecomposition, RingHopsWalkForwardOnly)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    // Forward-only ring: 1 hop to the next member, n-1 back to the
    // previous one; the two directions always sum to the ring length.
    EXPECT_EQ(net.ringHops(0, 1), 1u);
    EXPECT_EQ(net.ringHops(1, 0), 15u);
    EXPECT_EQ(net.ringHops(0, 3), 3u);
    EXPECT_EQ(net.ringHops(3, 11), 1u); // serpentine row turn
    for (SiteId a : {SiteId{0}, SiteId{9}, SiteId{17}}) {
        for (SiteId b : {SiteId{1}, SiteId{10}, SiteId{24}}) {
            if (a == b)
                continue;
            EXPECT_EQ(net.ringHops(a, b) + net.ringHops(b, a), 16u);
        }
    }
}

TEST(HermesRouting, IntraClusterBroadcastLatency)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 0;
    m.dst = 1;
    m.bytes = 64;
    net.inject(m);
    sim.run();
    // 1 cycle E-O + 100 ser + 1 ring hop + 1 cycle O-E.
    EXPECT_EQ(delivered, 200u + 100u + 250u + 200u);
    EXPECT_EQ(net.bridgedPackets(), 0u);
}

TEST(HermesRouting, SharedRingSerializesSendersInInjectionOrder)
{
    // The broadcast medium is the ordering point: concurrent senders
    // on one ring serialize in injection order regardless of where
    // their receivers sit, so every member observes the same global
    // transmission order (the property HERMES uses for snooping).
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    int seen = 0;
    net.setDefaultHandler([&](const Message &m) {
        // Recover when each packet finished serializing by peeling
        // off its (per-destination) ring walk and O-E cycle.
        const Tick ser_done = m.delivered - 200u
            - static_cast<Tick>(net.ringHops(m.src, m.dst)) * 250u;
        ++seen;
        // Back-to-back 100-tick slots in *injection* order (sender
        // k gets slot k), even though delivery order is reversed
        // here: later senders sit closer to the destination, so
        // their shorter ring walks land first.
        EXPECT_EQ(ser_done, 300u + 100u * (m.src - 1));
    });
    for (SiteId src : {SiteId{1}, SiteId{2}, SiteId{3}}) {
        Message m;
        m.src = src;
        m.dst = 0;
        m.bytes = 64;
        net.inject(m);
    }
    sim.run();
    EXPECT_EQ(seen, 3);
}

TEST(HermesRouting, BackToBackPacketsQueueOnTheRing)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    std::vector<Tick> times;
    net.setDefaultHandler([&](const Message &m) {
        times.push_back(m.delivered);
    });
    for (int i = 0; i < 3; ++i) {
        Message m;
        m.src = 0;
        m.dst = 3;
        m.bytes = 64;
        net.inject(m);
    }
    sim.run();
    ASSERT_EQ(times.size(), 3u);
    EXPECT_EQ(times[0], 200u + 100u + 3u * 250u + 200u);
    EXPECT_EQ(times[1] - times[0], 100u); // one serialization slot
    EXPECT_EQ(times[2] - times[1], 100u);
}

TEST(HermesRouting, CrossClusterTakesThreeLegs)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 1; // cluster 0, ring position 1
    m.dst = 5; // cluster 1, ring position 1 (gateway is site 4)
    m.bytes = 64;
    net.inject(m);
    sim.run();
    // Leg 1 to gateway 0 (15 forward hops): 200 + 100 + 3750 = 4050,
    // handed to the gateway router at 4250. Leg 2: 200 router + 1600
    // bridge serialization + 1000 flight (site 0 -> site 4, 10 cm)
    // lands at 7050, handed over at 7250. Leg 3: 200 router + 100
    // ring serialization + 250 (1 hop) + 200 O-E.
    EXPECT_EQ(delivered, 4250u + 200u + 1600u + 1000u + 200u + 200u
                  + 100u + 250u + 200u);
    EXPECT_EQ(net.bridgedPackets(), 1u);
    // Two O-E-O conversions, one per gateway.
    EXPECT_EQ(net.energy().routerBytes(), 128u);
}

TEST(HermesRouting, GatewaySourceSkipsTheFirstRingLeg)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    Message m;
    m.src = 0; // gateway of cluster 0
    m.dst = 4; // gateway of cluster 1
    m.bytes = 64;
    net.inject(m);
    sim.run();
    // Straight onto the bridge: 200 router + 1600 ser + 1000 flight
    // + 200 O-E; no ring legs, no broadcast to cluster 0.
    EXPECT_EQ(delivered, 200u + 1600u + 1000u + 200u);
    EXPECT_EQ(net.bridgedPackets(), 1u);
    EXPECT_EQ(net.energy().routerBytes(), 64u);
}

TEST(HermesRouting, DeliversEveryPacketExactlyOnce)
{
    Simulator sim(11);
    HermesNetwork net(sim, simulatedConfig());
    std::map<std::uint64_t, int> seen;
    net.setDefaultHandler([&](const Message &m) {
        ++seen[m.cookie];
        EXPECT_GE(m.delivered, m.injected);
    });
    int expected = 0;
    for (SiteId src = 0; src < 64; src += 7) {
        for (SiteId dst = 0; dst < 64; dst += 5) {
            Message m;
            m.src = src;
            m.dst = dst;
            m.bytes = 64;
            m.cookie = static_cast<std::uint64_t>(src) * 100 + dst;
            net.inject(m);
            ++expected;
        }
    }
    sim.run();
    EXPECT_EQ(static_cast<int>(seen.size()), expected);
    for (const auto &[cookie, count] : seen)
        EXPECT_EQ(count, 1) << "cookie " << cookie;
}

TEST(HermesDegenerate, OneClusterIsAFlatBroadcastRing)
{
    // Tile = whole grid: the hierarchy degenerates to one flat
    // serpentine broadcast ring over all 64 sites — no gateways in
    // play, no bridged packets, and the latency collapses to the
    // analytic flat-ring form
    //   E-O + serialization + hops x ring-hop + O-E.
    Simulator sim;
    HermesParams params;
    params.clusterRows = 8;
    params.clusterCols = 8;
    HermesNetwork net(sim, simulatedConfig(), params);
    ASSERT_EQ(net.clusterCount(), 1u);
    EXPECT_EQ(net.clusterSize(0), 64u);
    // Derived ring width covers the whole chip: 2 x 8 x 64 lambdas.
    EXPECT_EQ(net.ringLambdas(), 1024u);

    std::map<std::uint64_t, Tick> delivered;
    net.setDefaultHandler([&](const Message &m) {
        delivered[m.cookie] = m.delivered;
    });
    struct Pair { SiteId src, dst; };
    const Pair pairs[] = {{0, 1}, {5, 40}, {63, 2}, {17, 16}};
    std::uint64_t cookie = 1;
    std::vector<Tick> expect;
    Tick ser_end = 200; // first E-O; ring slots queue after it
    for (const Pair &p : pairs) {
        Message m;
        m.src = p.src;
        m.dst = p.dst;
        m.bytes = 64;
        m.cookie = cookie++;
        net.inject(m);
        // 64 B on 1024 lambdas (2560 B/ns) is a 25-tick slot.
        ser_end += 25;
        expect.push_back(
            ser_end
            + static_cast<Tick>(net.ringHops(p.src, p.dst)) * 250u
            + 200u);
    }
    sim.run();
    ASSERT_EQ(delivered.size(), 4u);
    for (std::uint64_t c = 1; c <= 4; ++c)
        EXPECT_EQ(delivered[c], expect[c - 1]) << "pair " << c;
    EXPECT_EQ(net.bridgedPackets(), 0u);
}

TEST(HermesFaults, FaultableLinksCoverRingsAndBridges)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    const auto links = net.faultableLinks();
    // 4 rings keyed (gateway, gateway) + 4x3 ordered bridges.
    ASSERT_EQ(links.size(), 16u);
    int rings = 0;
    for (const auto &[a, b] : links) {
        if (a == b) {
            ++rings;
            EXPECT_EQ(net.gatewayOf(net.clusterOf(a)), a);
        }
    }
    EXPECT_EQ(rings, 4);
}

TEST(HermesFaults, DownedRingDropsIntraClusterTraffic)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    int drops = 0;
    net.setDropHandler([&](const Message &) { ++drops; });
    net.setDefaultHandler([](const Message &) {});
    LinkHealth down;
    down.down = true;
    EXPECT_TRUE(net.applyLinkHealth(0, 0, down));
    // Only gateway-keyed pairs are hermes links.
    EXPECT_FALSE(net.applyLinkHealth(1, 2, down));

    Message m;
    m.src = 1;
    m.dst = 2;
    net.inject(m);
    sim.run();
    EXPECT_EQ(drops, 1);
    EXPECT_EQ(net.droppedPackets(), 1u);
}

TEST(HermesFaults, DeadGatewaySeversBridgesNotItsRing)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    int drops = 0, ok = 0;
    net.setDropHandler([&](const Message &) { ++drops; });
    net.setDefaultHandler([&](const Message &) { ++ok; });
    EXPECT_TRUE(net.applySiteHealth(0, true)); // gateway of cluster 0
    EXPECT_FALSE(net.applySiteHealth(1, true)); // not a gateway

    Message cross;
    cross.src = 1;
    cross.dst = 5; // needs cluster 0's bridges
    net.inject(cross);
    Message local;
    local.src = 1;
    local.dst = 2; // pure ring traffic, unaffected
    net.inject(local);
    sim.run();
    EXPECT_EQ(drops, 1);
    EXPECT_EQ(ok, 1);

    // Repair restores the bridges.
    EXPECT_TRUE(net.applySiteHealth(0, false));
    Message again;
    again.src = 1;
    again.dst = 5;
    net.inject(again);
    sim.run();
    EXPECT_EQ(ok, 2);
}

TEST(HermesFaults, BridgesFailPerDirection)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    int drops = 0, ok = 0;
    net.setDropHandler([&](const Message &) { ++drops; });
    net.setDefaultHandler([&](const Message &) { ++ok; });
    LinkHealth down;
    down.down = true;
    // Kill only the cluster 0 -> cluster 1 bridge (gateways 0, 4).
    EXPECT_TRUE(net.applyLinkHealth(0, 4, down));

    Message forward;
    forward.src = 1;
    forward.dst = 5;
    net.inject(forward);
    Message reverse;
    reverse.src = 5;
    reverse.dst = 1; // the 4 -> 0 bridge is independent
    net.inject(reverse);
    sim.run();
    EXPECT_EQ(drops, 1);
    EXPECT_EQ(ok, 1);
}

TEST(HermesFaults, WavelengthMaskingStretchesSerialization)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    Tick delivered = 0;
    net.setDefaultHandler([&](const Message &m) {
        delivered = m.delivered;
    });
    LinkHealth half;
    half.bandwidthFraction = 0.5;
    EXPECT_TRUE(net.applyLinkHealth(0, 0, half));

    Message m;
    m.src = 0;
    m.dst = 1;
    m.bytes = 64;
    net.inject(m);
    sim.run();
    // Half the ring wavelengths masked: the 100-tick slot doubles.
    EXPECT_EQ(delivered, 200u + 200u + 250u + 200u);
}

TEST(HermesDescriptors, ComponentAndPowerShape)
{
    Simulator sim;
    HermesNetwork net(sim, simulatedConfig());
    const ComponentCounts c = net.componentCounts();
    // 64 members x 256 ring lambdas + 12 bridges x 16 lambdas.
    EXPECT_EQ(c.transmitters, 64u * 256u + 12u * 16u);
    EXPECT_EQ(c.receivers, c.transmitters);
    EXPECT_EQ(c.opticalSwitches, 0u);
    EXPECT_EQ(c.electronicRouters, 4u); // one per gateway
    // 4 rings x (256/8 guides x 2) + 12 bridges x 2 guides.
    EXPECT_EQ(c.waveguides, 4u * 64u + 12u * 2u);

    const auto specs = net.opticalPower();
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].wavelengths, 4u * 256u);
    EXPECT_EQ(specs[1].wavelengths, 12u * 16u);
    EXPECT_DOUBLE_EQ(specs[1].lossFactor, 1.0); // plain links
    // Ring loss: 16 x 0.1 dB passes + 10 log10(16) split = 13.6 dB.
    EXPECT_NEAR(specs[0].lossFactor,
                lossFactorFromExtraLoss(Decibel(13.64)), 0.25);
}

TEST(HermesDescriptors, RingLossIsClusterNotChipScaled)
{
    // The scaling thesis: growing the grid at fixed tile size leaves
    // the broadcast loss (hence per-wavelength laser power) alone,
    // where the flat ring's loss grows with the site count.
    Simulator sim;
    HermesNetwork small(sim, simulatedConfig());
    HermesNetwork big(sim, scaledConfig(24, 24));
    const auto s = small.opticalPower();
    const auto b = big.opticalPower();
    EXPECT_DOUBLE_EQ(s[0].lossFactor, b[0].lossFactor);
    // And the feasibility gate keeps closing at 24x24, with the
    // bridge (chip-span) path as the binding constraint.
    EXPECT_TRUE(big.feasibility().feasible);
    EXPECT_GT(small.feasibility().margin.value(),
              big.feasibility().margin.value());
}

} // namespace
