/**
 * @file
 * The determinism contract of the parallel sweep engine: the
 * figure 7-10 workload matrix must be bit-identical whether it runs
 * on one thread or many, because every cell's RNG seed is a pure
 * function of (root seed, workload, network) — never of scheduling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace
{

using namespace macrosim;
using namespace macrosim::bench;

/** Small enough to keep the full 66-cell matrix fast. */
constexpr std::uint64_t tinyInstr = 60;

void
expectIdentical(const TraceCpuResult &a, const TraceCpuResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.network, b.network);
    // Delivered counts.
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.coherenceOps, b.coherenceOps);
    EXPECT_EQ(a.runtime, b.runtime);
    // Latency accumulators and energy totals: exact double
    // equality, not a tolerance — the streams must be identical.
    EXPECT_EQ(a.opLatencyNs, b.opLatencyNs);
    EXPECT_EQ(a.totalJoules, b.totalJoules);
    EXPECT_EQ(a.routerJoules, b.routerJoules);
    EXPECT_EQ(a.cpuJoules, b.cpuJoules);
    EXPECT_EQ(a.edp, b.edp);
}

TEST(SweepDeterminism, MatrixIsIdenticalSerialAndParallel)
{
    setQuiet(true);
    const auto serial =
        runWorkloadMatrix(tinyInstr, 1, /*jobs=*/1, /*progress=*/false);
    const auto parallel =
        runWorkloadMatrix(tinyInstr, 1, /*jobs=*/4, /*progress=*/false);

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(),
              figureWorkloads(tinyInstr).size() * allNetworks.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(SweepDeterminism, ParallelRunsAreRepeatable)
{
    setQuiet(true);
    const auto first =
        runWorkloadMatrix(tinyInstr, 1, /*jobs=*/4, /*progress=*/false);
    const auto second =
        runWorkloadMatrix(tinyInstr, 1, /*jobs=*/4, /*progress=*/false);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdentical(first[i], second[i]);
}

TEST(SweepDeterminism, RootSeedChangesTheMatrix)
{
    setQuiet(true);
    const auto a =
        runWorkloadMatrix(tinyInstr, 1, /*jobs=*/4, /*progress=*/false);
    const auto b =
        runWorkloadMatrix(tinyInstr, 2, /*jobs=*/4, /*progress=*/false);
    ASSERT_EQ(a.size(), b.size());
    int differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        differing += (a[i].runtime != b[i].runtime);
    EXPECT_GT(differing, 0);
}

TEST(SeedDerivation, StableAcrossCalls)
{
    for (const NetId id : allNetworks) {
        for (const WorkloadSpec &spec : figureWorkloads(tinyInstr)) {
            const std::uint64_t s1 =
                deriveSeed(1, spec.name, netName(id));
            const std::uint64_t s2 =
                deriveSeed(1, spec.name, netName(id));
            EXPECT_EQ(s1, s2);
        }
    }
}

TEST(SeedDerivation, DistinctCellsGetDistinctSeeds)
{
    std::vector<std::uint64_t> seeds;
    for (const NetId id : allNetworks)
        for (const WorkloadSpec &spec : figureWorkloads(tinyInstr))
            seeds.push_back(deriveSeed(7, spec.name, netName(id)));
    for (std::size_t i = 0; i < seeds.size(); ++i)
        for (std::size_t j = i + 1; j < seeds.size(); ++j)
            EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
}

TEST(SeedDerivation, SensitiveToEveryInput)
{
    const std::uint64_t base = deriveSeed(1, "barnes", "Token Ring");
    EXPECT_NE(base, deriveSeed(2, "barnes", "Token Ring"));
    EXPECT_NE(base, deriveSeed(1, "ocean", "Token Ring"));
    EXPECT_NE(base, deriveSeed(1, "barnes", "Point-to-Point"));
    // Field boundaries matter: moving a character between the
    // workload and network labels must change the seed.
    EXPECT_NE(deriveSeed(1, "ab", "c"), deriveSeed(1, "a", "bc"));
}

/**
 * Pinned hash values: the derivation scheme is part of the repo's
 * reproducibility contract — published figures reference it — so a
 * change to the hash must be a conscious, test-breaking act.
 */
TEST(SeedDerivation, PinnedValues)
{
    EXPECT_EQ(mix64(0), 0u);
    EXPECT_EQ(mix64(1), 0x5692161d100b05e5ULL);
    EXPECT_EQ(deriveSeed(1, "barnes", "Token Ring"),
              deriveSeed(1, "barnes", "Token Ring"));
}

} // namespace
