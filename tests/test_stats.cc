/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/telemetry/registry.hh"

namespace
{

using namespace macrosim;

TEST(Counter, IncrementsAndAdds)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, NegativeValues)
{
    Accumulator a;
    a.sample(-3.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
}

TEST(Accumulator, WelfordMeanIsStableForLargeOffsets)
{
    // Regression: mean() used to return sum()/count() while sample()
    // maintained the Welford mean for the variance — and the two
    // diverge on large offsets. 100k samples of the same 1e9+0.1
    // value drift sum()/count() by ~1e-3; the Welford mean (delta is
    // exactly zero after the first sample) must stay exact.
    Accumulator a;
    const double x0 = 1e9 + 0.1;
    for (int i = 0; i < 100000; ++i)
        a.sample(x0);
    EXPECT_DOUBLE_EQ(a.mean(), x0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);

    // Alternating +-0.25 around the offset: mean recovers the offset
    // and the deviation survives the offset's magnitude.
    Accumulator b;
    for (int i = 0; i < 10000; ++i)
        b.sample(1e9 + (i % 2 ? 0.25 : -0.25));
    EXPECT_NEAR(b.mean(), 1e9, 1e-5);
    EXPECT_NEAR(b.stddev(), 0.25, 1e-6);
}

TEST(Histogram, RejectsBadRange)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 10.0, 0), FatalError);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5);
    EXPECT_EQ(h.count(), 10u);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 1u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, OverUnderflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(10.0); // hi bound counts as overflow (half-open range)
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, NonFiniteSamplesAreQuarantined)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(5.0);
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.nonfinite(), 3u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    // The moments only see the finite sample.
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    std::uint64_t binned = 0;
    for (auto b : h.buckets())
        binned += b;
    EXPECT_EQ(binned, 1u);
    h.reset();
    EXPECT_EQ(h.nonfinite(), 0u);
}

TEST(Histogram, QuantileMedianOfUniform)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, QuantileEmpty)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(5.0);
    h.sample(50.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Accumulator, MergeMatchesDirectSampling)
{
    // The PDES drivers shard samples per site and fold shards with
    // merge(); the fold must agree with sampling everything into one
    // accumulator (Chan's parallel-Welford update).
    Accumulator whole, left, right;
    const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0,
                         -1.0, 12.5, 0.25, 3.75};
    int i = 0;
    for (double x : xs) {
        whole.sample(x);
        (i++ % 2 ? right : left).sample(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
    EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-12);
}

TEST(Accumulator, MergeWithEmptyIsIdentity)
{
    Accumulator a, empty;
    a.sample(3.0);
    a.sample(7.0);

    Accumulator b = a;
    b.merge(empty);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 5.0);

    Accumulator c = empty;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 5.0);
    EXPECT_DOUBLE_EQ(c.min(), 3.0);
    EXPECT_DOUBLE_EQ(c.max(), 7.0);
}

TEST(Histogram, MergeAddsBinsAndSpecialBuckets)
{
    Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
    a.sample(1.0);
    a.sample(-2.0);
    b.sample(1.5);
    b.sample(9.0);
    b.sample(42.0);
    b.sample(std::numeric_limits<double>::quiet_NaN());
    a.merge(b);
    EXPECT_EQ(a.count(), 6u);
    EXPECT_EQ(a.buckets()[0], 2u); // 1.0 and 1.5
    EXPECT_EQ(a.buckets()[4], 1u); // 9.0
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.nonfinite(), 1u);

    Histogram incompatible(0.0, 10.0, 4);
    EXPECT_THROW(a.merge(incompatible), FatalError);
}

TEST(Histogram, QuantileInOverflowReportsInf)
{
    // When the requested quantile lands among samples clipped past
    // the cap, a finite answer would under-report the tail; the
    // injector relies on +inf to keep saturated load points honest.
    Histogram h(0.0, 10.0, 5);
    for (int i = 0; i < 90; ++i)
        h.sample(5.0);
    for (int i = 0; i < 10; ++i)
        h.sample(1000.0);
    EXPECT_TRUE(std::isfinite(h.quantile(0.5)));
    EXPECT_TRUE(std::isinf(h.quantile(0.99)));
    EXPECT_GT(h.quantile(0.99), 0.0); // +inf, not -inf
}

TEST(StatGroup, DumpsNamesAndValues)
{
    Counter c;
    c += 3;
    Accumulator a;
    a.sample(10.0);
    a.sample(20.0);

    StatGroup g;
    g.addCounter("packets", c);
    g.addMean("latency", a);

    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "packets 3\nlatency 15\n");

    std::ostringstream csv;
    g.dumpCsv(csv);
    EXPECT_EQ(csv.str(), "packets,latency\n3,15\n");
}

TEST(StatGroup, ValuesArePulledAtDumpTime)
{
    Counter c;
    StatGroup g;
    g.addCounter("n", c);
    c += 7;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "n 7\n");
}

} // namespace
