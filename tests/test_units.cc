/**
 * @file
 * Unit tests for dB / dBm / mW arithmetic.
 */

#include <gtest/gtest.h>

#include "photonics/units.hh"

namespace
{

using namespace macrosim;

TEST(Decibel, LinearConversionRoundTrips)
{
    for (double db : {-30.0, -3.0, 0.0, 1.0, 10.0, 12.8, 15.0}) {
        const Decibel d(db);
        EXPECT_NEAR(Decibel::fromLinear(d.linear()).value(), db, 1e-9);
    }
}

TEST(Decibel, KnownLinearValues)
{
    EXPECT_NEAR(Decibel(10.0).linear(), 10.0, 1e-12);
    EXPECT_NEAR(Decibel(20.0).linear(), 100.0, 1e-12);
    EXPECT_NEAR(Decibel(3.0).linear(), 1.9953, 1e-4);
    EXPECT_NEAR(Decibel(0.0).linear(), 1.0, 1e-12);
    EXPECT_NEAR(Decibel(-3.0).linear(), 0.50119, 1e-4);
}

TEST(Decibel, CascadedLossesAdd)
{
    const Decibel total = Decibel(4.0) + Decibel(1.2) + Decibel(6.0);
    EXPECT_NEAR(total.value(), 11.2, 1e-12);
    // Adding in dB == multiplying linear ratios.
    EXPECT_NEAR(total.linear(),
                Decibel(4.0).linear() * Decibel(1.2).linear()
                    * Decibel(6.0).linear(),
                1e-9);
}

TEST(Decibel, ScalarMultiplyForRepeatedComponents)
{
    // 128 off-resonance modulator passes at 0.1 dB each.
    const Decibel loss = Decibel(0.1) * 128.0;
    EXPECT_NEAR(loss.value(), 12.8, 1e-12);
    EXPECT_NEAR(loss.linear(), 19.05, 0.01);
}

TEST(Decibel, UserDefinedLiteral)
{
    EXPECT_DOUBLE_EQ((4.5_dB).value(), 4.5);
    EXPECT_DOUBLE_EQ((-21.0_dBm).value(), -21.0);
}

TEST(PowerDbm, MilliwattConversions)
{
    EXPECT_NEAR(PowerDbm(0.0).milliwatts(), 1.0, 1e-12);
    EXPECT_NEAR(PowerDbm(10.0).milliwatts(), 10.0, 1e-12);
    EXPECT_NEAR(PowerDbm(-21.0).milliwatts(), 0.0079433, 1e-6);
    EXPECT_NEAR(PowerDbm::fromMilliwatts(10.0).value(), 10.0, 1e-9);
}

TEST(PowerDbm, AttenuationArithmetic)
{
    // 0 dBm launch through a 17 dB link arrives at -17 dBm...
    const PowerDbm received = PowerDbm(0.0) - Decibel(17.0);
    EXPECT_NEAR(received.value(), -17.0, 1e-12);
    // ...leaving 4 dB margin over a -21 dBm sensitivity.
    const Decibel margin = received - PowerDbm(-21.0);
    EXPECT_NEAR(margin.value(), 4.0, 1e-12);
}

TEST(PowerDbm, Ordering)
{
    EXPECT_LT(PowerDbm(-21.0), PowerDbm(-17.0));
    EXPECT_GT(Decibel(4.0), Decibel(0.0));
}

} // namespace
