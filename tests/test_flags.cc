/**
 * @file
 * Unit tests for the shared bench flag strippers (bench/flags.cc):
 * argv surgery, strict numeric parsing (trailing garbage, negative
 * values, overflow), and the telemetry/campaign option tables.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "flags.hh"
#include "sim/logging.hh"

using namespace macrosim;
using namespace macrosim::bench;

namespace
{

/** Mutable argv copy a stripper can edit in place. */
class Args
{
  public:
    explicit Args(std::vector<std::string> words)
        : words_(std::move(words))
    {
        for (std::string &w : words_)
            ptrs_.push_back(w.data());
        ptrs_.push_back(nullptr);
        argc_ = static_cast<int>(words_.size());
    }

    int &argc() { return argc_; }
    char **argv() { return ptrs_.data(); }

    std::vector<std::string>
    remaining() const
    {
        std::vector<std::string> out;
        for (int i = 0; i < argc_; ++i)
            out.emplace_back(ptrs_[static_cast<std::size_t>(i)]);
        return out;
    }

  private:
    std::vector<std::string> words_;
    std::vector<char *> ptrs_;
    int argc_ = 0;
};

} // namespace

TEST(FlagsValue, EqualsFormStripsAndReturnsText)
{
    Args a({"bench", "--trace=out.json", "1000"});
    std::string v;
    EXPECT_TRUE(stripValueFlag(a.argc(), a.argv(), "trace", &v));
    EXPECT_EQ(v, "out.json");
    EXPECT_EQ(a.remaining(),
              (std::vector<std::string>{"bench", "1000"}));
}

TEST(FlagsValue, SeparateFormConsumesBothWords)
{
    Args a({"bench", "--trace", "out.json", "1000"});
    std::string v;
    EXPECT_TRUE(stripValueFlag(a.argc(), a.argv(), "trace", &v));
    EXPECT_EQ(v, "out.json");
    EXPECT_EQ(a.remaining(),
              (std::vector<std::string>{"bench", "1000"}));
}

TEST(FlagsValue, AbsentFlagLeavesArgvAlone)
{
    Args a({"bench", "--other=1"});
    std::string v = "unchanged";
    EXPECT_FALSE(stripValueFlag(a.argc(), a.argv(), "trace", &v));
    EXPECT_EQ(v, "unchanged");
    EXPECT_EQ(a.remaining(),
              (std::vector<std::string>{"bench", "--other=1"}));
}

TEST(FlagsValue, BareNameWithoutValueIsNotConsumed)
{
    // "--trace" as the last word has no value to take.
    Args a({"bench", "--trace"});
    std::string v;
    EXPECT_FALSE(stripValueFlag(a.argc(), a.argv(), "trace", &v));
    EXPECT_EQ(a.remaining(),
              (std::vector<std::string>{"bench", "--trace"}));
}

TEST(FlagsSwitch, StripsExactMatchOnly)
{
    Args a({"bench", "--profile", "--profiles"});
    EXPECT_TRUE(stripSwitch(a.argc(), a.argv(), "profile"));
    EXPECT_EQ(a.remaining(),
              (std::vector<std::string>{"bench", "--profiles"}));
    EXPECT_FALSE(stripSwitch(a.argc(), a.argv(), "profile"));
}

TEST(FlagsNumber, ParsesDecimalHexAndOctalBases)
{
    std::uint64_t v = 0;
    {
        Args a({"bench", "--jobs=12"});
        EXPECT_TRUE(stripNumberFlag(a.argc(), a.argv(), "jobs", &v));
        EXPECT_EQ(v, 12u);
    }
    {
        Args a({"bench", "--jobs=0x10"});
        EXPECT_TRUE(stripNumberFlag(a.argc(), a.argv(), "jobs", &v));
        EXPECT_EQ(v, 16u);
    }
    {
        Args a({"bench", "--jobs", "010"});
        EXPECT_TRUE(stripNumberFlag(a.argc(), a.argv(), "jobs", &v));
        EXPECT_EQ(v, 8u);
    }
}

TEST(FlagsNumber, MaxUint64RoundTrips)
{
    Args a({"bench", "--jobs=18446744073709551615"});
    std::uint64_t v = 0;
    EXPECT_TRUE(stripNumberFlag(a.argc(), a.argv(), "jobs", &v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(FlagsNumber, RejectsTrailingGarbage)
{
    Args a({"bench", "--jobs=4x"});
    std::uint64_t v = 0;
    EXPECT_THROW(stripNumberFlag(a.argc(), a.argv(), "jobs", &v),
                 FatalError);
}

TEST(FlagsNumber, RejectsNegativeInsteadOfWrapping)
{
    // strtoull would happily return 2^64-1 here; the stripper must
    // not.
    Args a({"bench", "--jobs=-1"});
    std::uint64_t v = 0;
    EXPECT_THROW(stripNumberFlag(a.argc(), a.argv(), "jobs", &v),
                 FatalError);
}

TEST(FlagsNumber, RejectsExplicitPlusEmptyAndWhitespace)
{
    for (const char *bad : {"+4", "", " 4", "4 "}) {
        Args a({"bench", std::string("--jobs=") + bad});
        std::uint64_t v = 0;
        EXPECT_THROW(stripNumberFlag(a.argc(), a.argv(), "jobs", &v),
                     FatalError)
            << "accepted '" << bad << "'";
    }
}

TEST(FlagsNumber, RejectsOutOfRange)
{
    // One past UINT64_MAX.
    Args a({"bench", "--jobs=18446744073709551616"});
    std::uint64_t v = 0;
    EXPECT_THROW(stripNumberFlag(a.argc(), a.argv(), "jobs", &v),
                 FatalError);
}

TEST(FlagsSeed, FlagBeatsFallbackAndRejectsGarbage)
{
    // The env fallback would shadow the hard-coded fallback below.
    unsetenv("MACROSIM_SEED");
    {
        Args a({"bench", "--seed=99"});
        EXPECT_EQ(seedArg(a.argc(), a.argv(), 7), 99u);
    }
    {
        Args a({"bench"});
        EXPECT_EQ(seedArg(a.argc(), a.argv(), 7), 7u);
    }
    {
        Args a({"bench", "--seed=12beef"});
        EXPECT_THROW(seedArg(a.argc(), a.argv(), 7), FatalError);
    }
    {
        Args a({"bench", "--seed=-3"});
        EXPECT_THROW(seedArg(a.argc(), a.argv(), 7), FatalError);
    }
}

TEST(FlagsTelemetry, MetricsPeriodStrictlyParsed)
{
    {
        Args a({"bench", "--metrics=m.json",
                "--metrics-period=2500"});
        const TelemetryOptions t = telemetryArgs(a.argc(), a.argv());
        EXPECT_EQ(t.metricsPath, "m.json");
        EXPECT_EQ(t.metricsPeriod, 2500u);
        EXPECT_EQ(t.period(), 2500u);
    }
    // atoll-era bugs: trailing garbage and wrapped negatives must be
    // fatal, not silently truncated.
    {
        Args a({"bench", "--metrics-period=100x"});
        EXPECT_THROW(telemetryArgs(a.argc(), a.argv()), FatalError);
    }
    {
        Args a({"bench", "--metrics-period=-5"});
        EXPECT_THROW(telemetryArgs(a.argc(), a.argv()), FatalError);
    }
    {
        Args a({"bench", "--metrics-period=0"});
        EXPECT_THROW(telemetryArgs(a.argc(), a.argv()), FatalError);
    }
}

TEST(FlagsCampaign, NumericCampaignKnobsRejectGarbage)
{
    {
        Args a({"bench", "--warmup-ns=100ns"});
        EXPECT_THROW(campaignArgs(a.argc(), a.argv()), FatalError);
    }
    {
        Args a({"bench", "--loads=0.1,oops"});
        EXPECT_THROW(campaignArgs(a.argc(), a.argv()), FatalError);
    }
    {
        Args a({"bench", "--loads=0.1,-0.5"});
        EXPECT_THROW(campaignArgs(a.argc(), a.argv()), FatalError);
    }
    {
        Args a({"bench", "--loads=inf"});
        EXPECT_THROW(campaignArgs(a.argc(), a.argv()), FatalError);
    }
}

TEST(FlagsCampaign, ValidSpecRoundTrips)
{
    Args a({"bench", "--kind=matrix", "--loads=0.25,0.5",
            "--warmup-ns=100", "--window-ns=400", "--instr=5000"});
    const service::CampaignSpec spec = campaignArgs(a.argc(), a.argv());
    EXPECT_EQ(spec.kind, service::CampaignKind::WorkloadMatrix);
    ASSERT_EQ(spec.loads.size(), 2u);
    EXPECT_DOUBLE_EQ(spec.loads[0], 0.25);
    EXPECT_DOUBLE_EQ(spec.loads[1], 0.5);
    EXPECT_EQ(spec.warmupNs, 100u);
    EXPECT_EQ(spec.windowNs, 400u);
    EXPECT_EQ(spec.instructionsPerCore, 5000u);
    EXPECT_EQ(a.remaining(), (std::vector<std::string>{"bench"}));
}
