/**
 * @file
 * Tests for FlatMap, the robin-hood open-addressing map under the
 * simulator's hot-path state tables.
 *
 * The heavy lifting is a randomized differential test against
 * std::unordered_map (the same reference-model style as
 * test_event_stress.cc): long interleaved insert/erase/find/clear
 * histories must agree with the standard container exactly. On top
 * of that, directed tests pin the backward-shift erase paths —
 * colliding clusters, wraparound at the table's end — and the
 * reserve/rehash observability contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/flat_map.hh"

namespace
{

using namespace macrosim;

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), 0u);
    EXPECT_EQ(m.find(42), m.end());
    EXPECT_FALSE(m.erase(42));
    EXPECT_FALSE(m.contains(42));
    EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, std::string> m;
    auto [it, inserted] = m.try_emplace(7, "seven");
    EXPECT_TRUE(inserted);
    EXPECT_EQ(it->first, 7u);
    EXPECT_EQ(it->second, "seven");

    auto [it2, inserted2] = m.try_emplace(7, "again");
    EXPECT_FALSE(inserted2);
    EXPECT_EQ(it2->second, "seven"); // try_emplace keeps the old value

    EXPECT_EQ(m.size(), 1u);
    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.contains(7));
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, SubscriptDefaultConstructsAndAssigns)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    EXPECT_EQ(m[5], 0u);
    m[5] = 99;
    EXPECT_EQ(m.at(5), 99u);
    m[5] += 1;
    EXPECT_EQ(m.at(5), 100u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, InsertOrAssignOverwrites)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.insert_or_assign(3, 30).second);
    EXPECT_FALSE(m.insert_or_assign(3, 31).second);
    EXPECT_EQ(m.at(3), 31);
}

TEST(FlatMap, HoldsMoveOnlyValues)
{
    FlatMap<std::uint64_t, std::unique_ptr<int>> m;
    m.try_emplace(1, std::make_unique<int>(11));
    m.try_emplace(2, std::make_unique<int>(22));
    EXPECT_EQ(*m.at(1), 11);
    EXPECT_TRUE(m.erase(1));
    EXPECT_EQ(*m.at(2), 22);
}

TEST(FlatMap, IterationVisitsEveryEntryOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.try_emplace(k * 977, k);
    std::vector<std::uint64_t> keys;
    for (const auto &[k, v] : m) {
        EXPECT_EQ(v, k / 977);
        keys.push_back(k);
    }
    std::sort(keys.begin(), keys.end());
    ASSERT_EQ(keys.size(), 100u);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(keys[k], k * 977);
}

TEST(FlatMap, EraseByIterator)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 10; ++k)
        m.try_emplace(k, static_cast<int>(k));
    auto it = m.find(4);
    ASSERT_NE(it, m.end());
    m.erase(it);
    EXPECT_EQ(m.size(), 9u);
    EXPECT_FALSE(m.contains(4));
    for (std::uint64_t k = 0; k < 10; ++k) {
        if (k != 4) {
            EXPECT_TRUE(m.contains(k)) << k;
        }
    }
}

TEST(FlatMap, ReserveThenFillNeverRehashes)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    m.reserve(1000);
    const std::size_t after_reserve = m.rehashes();
    const std::size_t cap = m.capacity();
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.try_emplace(k, k);
    EXPECT_EQ(m.rehashes(), after_reserve);
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.size(), 1000u);
}

TEST(FlatMap, GrowthPreservesEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 5000; ++k)
        m.try_emplace(k * k + 1, k);
    EXPECT_GT(m.rehashes(), 1u); // grew several times from 16
    for (std::uint64_t k = 0; k < 5000; ++k)
        EXPECT_EQ(m.at(k * k + 1), k);
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.try_emplace(k, 1);
    const std::size_t cap = m.capacity();
    const std::size_t rehashes = m.rehashes();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(m.contains(k));
    for (std::uint64_t k = 0; k < 100; ++k)
        m.try_emplace(k, 2);
    EXPECT_EQ(m.rehashes(), rehashes); // refill fit the old table
}

TEST(FlatMap, MoveTransfersContents)
{
    FlatMap<std::uint64_t, int> a;
    a.try_emplace(1, 10);
    a.try_emplace(2, 20);
    FlatMap<std::uint64_t, int> b = std::move(a);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b.at(2), 20);
    a = std::move(b);
    EXPECT_EQ(a.at(1), 10);
}

/** Degenerate hash: every key lands in bucket (key % 4), forcing
 *  long colliding clusters, displacement, and wraparound. */
struct Mod4Hash
{
    std::size_t
    operator()(std::uint64_t k) const noexcept
    {
        return static_cast<std::size_t>(k % 4);
    }
};

TEST(FlatMap, CollidingClusterSurvivesMiddleErase)
{
    FlatMap<std::uint64_t, int, Mod4Hash> m;
    // All five keys hash to bucket 1: one contiguous probe cluster.
    for (std::uint64_t k : {1u, 5u, 9u, 13u, 17u})
        m.try_emplace(k, static_cast<int>(k));
    // Erasing from the middle backward-shifts the tail; everything
    // else must stay findable.
    EXPECT_TRUE(m.erase(9));
    EXPECT_FALSE(m.contains(9));
    for (std::uint64_t k : {1u, 5u, 13u, 17u})
        EXPECT_EQ(m.at(k), static_cast<int>(k)) << k;
    EXPECT_TRUE(m.erase(1)); // erase the cluster head
    for (std::uint64_t k : {5u, 13u, 17u})
        EXPECT_EQ(m.at(k), static_cast<int>(k)) << k;
    EXPECT_EQ(m.size(), 3u);
}

/** Identity hash: the key *is* the bucket (mod capacity), so a test
 *  can aim a probe cluster at any slot — including the table's last,
 *  to force wraparound. */
struct IdentityHash
{
    std::size_t
    operator()(std::uint64_t k) const noexcept
    {
        return static_cast<std::size_t>(k);
    }
};

TEST(FlatMap, ClusterWrapsAroundTableEnd)
{
    FlatMap<std::uint64_t, int, IdentityHash> m;
    m.reserve(8); // 16 slots.
    ASSERT_EQ(m.capacity(), 16u);
    // 13 keys all homed at slot 14: the cluster spans 14, 15, then
    // wraps to 0..10, so every find/erase crosses the wrap point.
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < 13; ++i)
        keys.push_back(14 + 16 * i);
    for (std::uint64_t k : keys)
        m.try_emplace(k, static_cast<int>(k));
    for (std::uint64_t k : keys)
        EXPECT_EQ(m.at(k), static_cast<int>(k)) << k;
    // Erase in an order that exercises shifts across the wrap point.
    for (std::uint64_t k : keys) {
        EXPECT_TRUE(m.erase(k)) << k;
        EXPECT_FALSE(m.contains(k)) << k;
    }
    EXPECT_TRUE(m.empty());
}

/** Deterministic xorshift so the differential history is replayable. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

TEST(FlatMap, DifferentialAgainstUnorderedMap)
{
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;

    const auto checkConsistent = [&] {
        ASSERT_EQ(flat.size(), ref.size());
        for (const auto &[k, v] : ref) {
            auto it = flat.find(k);
            ASSERT_NE(it, flat.end()) << "missing key " << k;
            ASSERT_EQ(it->second, v) << "wrong value for " << k;
        }
        for (const auto &[k, v] : flat) {
            auto it = ref.find(k);
            ASSERT_NE(it, ref.end()) << "phantom key " << k;
            ASSERT_EQ(it->second, v);
        }
    };

    for (int round = 0; round < 20; ++round) {
        for (int op = 0; op < 2000; ++op) {
            // A small key universe keeps hit rates high on every
            // operation type (inserts that collide, erases that hit).
            const std::uint64_t key = nextRand(rng) % 512;
            switch (nextRand(rng) % 8) {
              case 0:
              case 1:
              case 2: { // try_emplace
                const std::uint64_t val = nextRand(rng);
                const bool f =
                    flat.try_emplace(key, val).second;
                const bool r = ref.try_emplace(key, val).second;
                ASSERT_EQ(f, r);
                break;
              }
              case 3: { // insert_or_assign
                const std::uint64_t val = nextRand(rng);
                const bool f = flat.insert_or_assign(key, val).second;
                const bool r =
                    ref.insert_or_assign(key, val).second;
                ASSERT_EQ(f, r);
                break;
              }
              case 4:
              case 5: { // erase
                ASSERT_EQ(flat.erase(key), ref.erase(key) == 1);
                break;
              }
              case 6: { // find
                const auto f = flat.find(key);
                const auto r = ref.find(key);
                ASSERT_EQ(f != flat.end(), r != ref.end());
                if (r != ref.end()) {
                    ASSERT_EQ(f->second, r->second);
                }
                break;
              }
              case 7: { // operator[] increment
                const std::uint64_t f = ++flat[key];
                const std::uint64_t r = ++ref[key];
                ASSERT_EQ(f, r);
                break;
              }
            }
        }
        checkConsistent();
        if (round == 9) { // mid-history reset
            flat.clear();
            ref.clear();
        }
    }
}

TEST(FlatMap, DifferentialUnderDegenerateHash)
{
    // Same history discipline, but with a hash bad enough that the
    // whole table is a handful of giant clusters — every insert and
    // erase exercises displacement and backward shift.
    FlatMap<std::uint64_t, std::uint64_t, Mod4Hash> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    std::uint64_t rng = 0xdeadbeefcafef00dull;
    for (int op = 0; op < 20000; ++op) {
        const std::uint64_t key = nextRand(rng) % 128;
        if (nextRand(rng) % 2) {
            const std::uint64_t val = nextRand(rng);
            ASSERT_EQ(flat.insert_or_assign(key, val).second,
                      ref.insert_or_assign(key, val).second);
        } else {
            ASSERT_EQ(flat.erase(key), ref.erase(key) == 1);
        }
    }
    ASSERT_EQ(flat.size(), ref.size());
    for (const auto &[k, v] : ref)
        ASSERT_EQ(flat.at(k), v);
}

} // namespace
