/**
 * @file
 * Tests for macrochip geometry: coordinates, route lengths,
 * propagation delays, ring and torus metrics.
 */

#include <gtest/gtest.h>

#include "arch/geometry.hh"
#include "sim/logging.hh"

namespace
{

using namespace macrosim;

TEST(Geometry, RejectsDegenerateGrids)
{
    EXPECT_THROW(MacrochipGeometry(0, 8), FatalError);
    EXPECT_THROW(MacrochipGeometry(8, 0), FatalError);
    EXPECT_THROW(MacrochipGeometry(8, 8, 0.0), FatalError);
}

TEST(Geometry, CoordIdRoundTrip)
{
    MacrochipGeometry g(8, 8);
    for (SiteId id = 0; id < g.siteCount(); ++id)
        EXPECT_EQ(g.idOf(g.coordOf(id)), id);
    EXPECT_EQ(g.coordOf(0), (SiteCoord{0, 0}));
    EXPECT_EQ(g.coordOf(7), (SiteCoord{0, 7}));
    EXPECT_EQ(g.coordOf(8), (SiteCoord{1, 0}));
    EXPECT_EQ(g.coordOf(63), (SiteCoord{7, 7}));
}

TEST(Geometry, NonSquareGrid)
{
    MacrochipGeometry g(2, 3);
    EXPECT_EQ(g.siteCount(), 6u);
    EXPECT_EQ(g.coordOf(4), (SiteCoord{1, 1}));
    EXPECT_EQ(g.idOf({1, 2}), 5u);
}

TEST(Geometry, RowColPredicates)
{
    MacrochipGeometry g(8, 8);
    EXPECT_TRUE(g.sameRow(0, 7));
    EXPECT_FALSE(g.sameRow(0, 8));
    EXPECT_TRUE(g.sameCol(0, 56));
    EXPECT_FALSE(g.sameCol(0, 57));
}

TEST(Geometry, ManhattanRouteLength)
{
    MacrochipGeometry g(8, 8, 2.5);
    EXPECT_DOUBLE_EQ(g.routeLengthCm(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(g.routeLengthCm(0, 1), 2.5);
    EXPECT_DOUBLE_EQ(g.routeLengthCm(0, 63), 14 * 2.5);
    // Symmetric.
    EXPECT_DOUBLE_EQ(g.routeLengthCm(63, 0), g.routeLengthCm(0, 63));
    EXPECT_DOUBLE_EQ(g.worstCaseRouteCm(), 35.0);
}

TEST(Geometry, PropagationDelayMatchesSpeedOfLightInSoi)
{
    MacrochipGeometry g(8, 8, 2.5);
    // 0.1 ns/cm: one 2.5 cm hop = 0.25 ns = 250 ticks.
    EXPECT_EQ(g.propagationDelay(0, 1), 250u);
    // Worst case corner-to-corner: 35 cm = 3.5 ns.
    EXPECT_EQ(g.propagationDelay(0, 63), 3500u);
}

TEST(Geometry, RingMetricsReproduceTokenLatency)
{
    MacrochipGeometry g(8, 8, 2.5);
    EXPECT_DOUBLE_EQ(g.ringLengthCm(), 160.0);
    // 16 ns round trip = 80 cycles at 5 GHz, as scaled in section 4.4.
    EXPECT_EQ(g.ringRoundTrip(), 16 * tickNs);
    EXPECT_EQ(systemClock.ticksToCycles(g.ringRoundTrip()).count(), 80u);
    EXPECT_EQ(g.ringHopDelay(), 250u);
}

TEST(Geometry, TorusHopsWrapAround)
{
    MacrochipGeometry g(8, 8);
    EXPECT_EQ(g.torusHops(0, 0), 0u);
    EXPECT_EQ(g.torusHops(0, 1), 1u);
    // 0 -> 7 in the same row: wraparound distance is 1, not 7.
    EXPECT_EQ(g.torusHops(0, 7), 1u);
    EXPECT_EQ(g.torusHops(0, 63), 2u); // wrap in both dimensions
    // Maximum torus distance on an 8x8 is 4 + 4.
    std::uint32_t max_hops = 0;
    for (SiteId a = 0; a < 64; ++a)
        for (SiteId b = 0; b < 64; ++b)
            max_hops = std::max(max_hops, g.torusHops(a, b));
    EXPECT_EQ(max_hops, 8u);
}

TEST(Geometry, WaveguideDelayIsLinear)
{
    EXPECT_EQ(MacrochipGeometry::waveguideDelay(10.0), 1 * tickNs);
    EXPECT_EQ(MacrochipGeometry::waveguideDelay(0.0), 0u);
}

} // namespace
