/**
 * @file
 * Tests for the finite fiber-attached memory channels at each home
 * site: cold misses to one home serialize on its ports.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/pt2pt.hh"
#include "workloads/coherence.hh"

namespace
{

using namespace macrosim;

/**
 * Cold misses to distinct lines all homed at site 9, issued by
 * distinct requesters so every request and reply rides its own
 * point-to-point channel: the only shared resource is site 9's
 * memory-port bank.
 */
std::vector<Tick>
coldMissLatencies(std::uint32_t ports, int misses)
{
    Simulator sim(3);
    MacrochipConfig cfg = simulatedConfig();
    cfg.memoryPortsPerSite = ports;
    PointToPointNetwork net(sim, cfg);
    CoherenceEngine eng(sim, net, true);

    std::vector<Tick> latencies;
    for (int i = 0; i < misses; ++i) {
        const Addr addr = (9 + 64 * static_cast<Addr>(i)) * 64;
        eng.startAccess(static_cast<SiteId>(1 + i), addr, MemOp::Read,
                        [&](TxnId, Tick lat) {
                            latencies.push_back(lat);
                        });
    }
    sim.run();
    return latencies;
}

TEST(MemoryPorts, SinglePortSerializesColdMisses)
{
    const auto lat = coldMissLatencies(1, 4);
    ASSERT_EQ(lat.size(), 4u);
    // Each successive miss waits one extra 3.2 ns channel slot
    // (within the sub-ns skew of the requesters' flight times).
    for (std::size_t i = 1; i < lat.size(); ++i) {
        EXPECT_NEAR(static_cast<double>(lat[i] - lat[i - 1]), 3200.0,
                    800.0);
    }
}

TEST(MemoryPorts, FourPortsAbsorbFourMisses)
{
    const auto lat = coldMissLatencies(4, 4);
    ASSERT_EQ(lat.size(), 4u);
    // All four proceed in parallel; only flight-time skew remains.
    EXPECT_LT(lat.back() - lat.front(), 1600u);
}

TEST(MemoryPorts, MorePortsNeverSlower)
{
    const auto narrow = coldMissLatencies(1, 8);
    const auto wide = coldMissLatencies(8, 8);
    double sum_narrow = 0.0, sum_wide = 0.0;
    for (const Tick t : narrow)
        sum_narrow += static_cast<double>(t);
    for (const Tick t : wide)
        sum_wide += static_cast<double>(t);
    EXPECT_LT(sum_wide, sum_narrow);
}

TEST(MemoryPorts, OwnerForwardingSkipsMemoryEntirely)
{
    // A dirty line is supplied by its owner: the memory channels are
    // untouched and latency excludes the 50 ns memory term.
    Simulator sim(3);
    PointToPointNetwork net(sim, simulatedConfig());
    CoherenceEngine eng(sim, net, true);
    Tick cold = 0, forwarded = 0;
    eng.startAccess(3, 0x4000, MemOp::Write,
                    [&](TxnId, Tick lat) { cold = lat; });
    sim.run();
    eng.startAccess(5, 0x4000, MemOp::Read,
                    [&](TxnId, Tick lat) { forwarded = lat; });
    sim.run();
    EXPECT_GT(cold, forwarded);
    EXPECT_GT(cold - forwarded,
              net.config().memoryLatency / 2);
}

} // namespace
